"""Windowed offline optimum with certified stitched bounds.

The exact time-expanded MILP (:mod:`repro.offline.timegraph`) scales
superlinearly with the horizon, and its safe drain period
(:func:`repro.simulation.engine.drain_bound`, O(N^2 * b) slots) is added
to *every* solve — at N = 16 the drain alone is 1345 slots, so the exact
model is unbuildable long before the arrival horizon gets interesting.
This module trades exactness for a certified bracket by decomposing the
arrival timeline into disjoint windows of ``window`` slots and solving
each window as a fresh, small instance with the *same* exact machinery:

* **Upper bound** — each window is solved with a free drain period after
  its last arrival.  Partition OPT's accepted packets by arrival window;
  the restriction of OPT's schedule to one window's packets is feasible
  for that window's stand-alone instance (all constraints are packing
  constraints), so ``sum_k OPT(window_k, free drain) >= OPT``.
* **Lower bound** — each non-final window is solved with the horizon
  clamped to the window end (forced drain).  The per-window schedules
  occupy disjoint time ranges and start from empty buffers, so their
  union is a feasible global schedule: ``sum_k OPT(window_k, forced
  drain) <= OPT``.  The final window keeps its free drain (there is
  nothing after it), so its lower and upper contributions coincide.

With a single window the solver delegates to the exact model verbatim
(identical horizon, identical MILP), so ``window >= trace.n_slots``
reproduces the exact optimum bit for bit — the anchor the differential
test matrix (``tests/test_opt_equivalence.py``) pins.

Per-window drain: windows use :func:`window_drain_slots`, a drain period
that is O(N * b) instead of the engine's O(N^2 * b) worst-case bound.

**Drain lemma.**  With no further arrivals, any feasible buffer state of
either switch model can be fully delivered within ``Delta + b_out + 1``
slots, where ``Delta <= max(n_in, n_out) * (b_in + b_cross)`` bounds the
maximum number of buffered packets incident to any one port.  Proof
sketch: form the bipartite multigraph with one edge (i, j) per buffered
packet still short of output queue j.  By Koenig's edge-coloring theorem
it decomposes into ``Delta`` matchings; schedule one matching per slot,
moving each scheduled packet one stage toward (and into) its output
queue — for the crossbar a VOQ packet traverses the crosspoint and the
output subphase within the same cycle when space permits, else the
crosspoint entry is drained first, so each scheduled edge still lands
one (i, j) packet in Q_j.  Using at most one entry per output per slot,
an output queue never exceeds its occupancy bound (it transmits every
slot it is non-empty), so no entry is ever blocked.  After ``Delta``
slots every packet sits in its output queue; at most ``b_out`` more
slots flush the queues.  The equivalence tests cross-validate the lemma
against the engine's conservative bound on every differential instance.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..switch.config import SwitchConfig
from ..switch.packet import Packet
from ..traffic.trace import Trace
from .crossbar_timegraph import CrossbarOptModel
from .timegraph import CIOQOptModel, OptResult, default_horizon

_MODEL_CLASSES = {"cioq": CIOQOptModel, "crossbar": CrossbarOptModel}


def window_drain_slots(config: SwitchConfig) -> int:
    """Drain period used for per-window solves: O(N * b) slots.

    ``max(n_in, n_out) * (b_in + b_cross) + b_out + 1`` always suffices
    to empty the switch with no further arrivals (Koenig edge-coloring
    argument; see the module docstring), versus the engine's
    conservative O(N^2 * b) :func:`~repro.simulation.engine.drain_bound`.
    """
    return (
        max(config.n_in, config.n_out) * (config.b_in + config.b_cross)
        + config.b_out
        + 1
    )


def subtrace(trace: Trace, start: int, stop: int) -> Trace:
    """Packets with ``start <= arrival < stop``, re-based to slot 0."""
    packets = [
        Packet(p.pid, p.value, p.arrival - start, p.src, p.dst)
        for p in trace.packets
        if start <= p.arrival < stop
    ]
    return Trace(packets, trace.n_in, trace.n_out,
                 name=f"{trace.name}[{start}:{stop})",
                 n_slots=max(0, min(stop, trace.n_slots) - start))


def window_boundaries(n_slots: int, window: int) -> List[Tuple[int, int]]:
    """Disjoint ``[start, stop)`` arrival windows covering ``n_slots``."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    return [(a, min(a + window, n_slots)) for a in range(0, n_slots, window)]


def windowed_opt(
    trace: Trace,
    config: SwitchConfig,
    window: int,
    model: str = "cioq",
    extract_schedule: bool = False,
) -> OptResult:
    """Certified OPT bracket from per-window exact solves.

    Returns an :class:`OptResult` with ``mode="windowed"``,
    ``benefit = opt_upper`` and the stitched ``(opt_lower, opt_upper)``
    bracket.  With ``window >= trace.n_slots`` the result is the exact
    optimum, computed by the exact model with its default horizon.
    """
    if model not in _MODEL_CLASSES:
        raise ValueError(
            f"unknown offline model {model!r}; expected {tuple(_MODEL_CLASSES)}"
        )
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if extract_schedule:
        raise ValueError(
            "schedule extraction is only supported in exact mode"
        )
    cls = _MODEL_CLASSES[model]
    if not trace.packets:
        return OptResult(benefit=0.0, n_delivered=0, mode="windowed",
                         opt_lower=0.0, opt_upper=0.0, window=window,
                         n_windows=0)
    if window >= trace.n_slots:
        # Single window: the exact model verbatim (same horizon, same
        # MILP), so the result matches exact mode bit for bit.
        exact = cls(trace, config).solve()
        return OptResult(
            benefit=exact.benefit,
            n_delivered=exact.n_delivered,
            accepted_pids=exact.accepted_pids,
            status=exact.status,
            mode="windowed",
            opt_lower=exact.benefit,
            opt_upper=exact.benefit,
            window=window,
            n_windows=1,
        )

    drain = window_drain_slots(config)
    bounds = window_boundaries(trace.n_slots, window)
    lower = 0.0
    upper = 0.0
    n_delivered = 0
    status = "optimal"
    for start, stop in bounds:
        sub = subtrace(trace, start, stop)
        if not sub.packets:
            continue
        # Free-drain solve: certified per-window upper contribution.
        up = cls(sub, config, horizon=sub.n_slots + drain).solve()
        if up.status != "optimal":
            status = up.status
        upper += up.benefit
        n_delivered += up.n_delivered
        if stop == trace.n_slots:
            # Final window: nothing follows, the free-drain schedule is
            # globally feasible as-is.
            lower += up.benefit
        else:
            # Forced drain by the window end: the schedule stays inside
            # [start, stop) in absolute time, so per-window schedules
            # union into one feasible global schedule.
            low = cls(sub, config, horizon=stop - start).solve()
            if low.status != "optimal":
                status = low.status
            lower += low.benefit
    # Intersect with the near-free greedy/capacity bracket: both
    # brackets are certified, so their intersection is too, and the
    # stitched bracket can only tighten (boundary losses hurt the
    # stitched lower end under saturation; the capacity relaxation is
    # often the tighter upper end there).
    from .bounds import bounds_opt

    cheap = bounds_opt(trace, config, model=model)
    lower = max(lower, cheap.opt_lower)
    upper = min(upper, cheap.opt_upper)
    upper = max(upper, lower)
    return OptResult(
        benefit=upper,
        n_delivered=n_delivered,
        status=status,
        mode="windowed",
        opt_lower=lower,
        opt_upper=upper,
        window=window,
        n_windows=len(bounds),
    )


def windowed_horizon(trace: Trace, config: SwitchConfig,
                     window: int) -> int:
    """Horizon the windowed solver effectively covers (for reporting)."""
    if window >= trace.n_slots:
        return default_horizon(trace, config)
    return trace.n_slots + window_drain_slots(config)
