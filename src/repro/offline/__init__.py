"""Offline optimum substrate: exact OPT and bounds for both switch models."""

from .mcmf import MinCostFlow
from .timegraph import CIOQOptModel, OptResult, cioq_relaxation_bound, default_horizon
from .crossbar_timegraph import CrossbarOptModel
from .bruteforce import bruteforce_cioq_opt_unit
from .decompose import OptSchedule, PacketItinerary, decompose_cioq_opt
from .bounds import bounds_opt, capacity_upper_bound, greedy_lower_bound
from .windowed import (
    subtrace,
    window_boundaries,
    window_drain_slots,
    windowed_opt,
)
from .opt import (
    OPT_MODES,
    cioq_opt,
    cioq_upper_bound,
    crossbar_opt,
    select_opt_mode,
    solve_opt,
)

__all__ = [
    "MinCostFlow",
    "CIOQOptModel",
    "OptResult",
    "cioq_relaxation_bound",
    "default_horizon",
    "CrossbarOptModel",
    "bruteforce_cioq_opt_unit",
    "OptSchedule",
    "PacketItinerary",
    "decompose_cioq_opt",
    "bounds_opt",
    "capacity_upper_bound",
    "greedy_lower_bound",
    "subtrace",
    "window_boundaries",
    "window_drain_slots",
    "windowed_opt",
    "OPT_MODES",
    "cioq_opt",
    "cioq_upper_bound",
    "crossbar_opt",
    "select_opt_mode",
    "solve_opt",
]
