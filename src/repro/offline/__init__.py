"""Offline optimum substrate: exact OPT and bounds for both switch models."""

from .mcmf import MinCostFlow
from .timegraph import CIOQOptModel, OptResult, cioq_relaxation_bound, default_horizon
from .crossbar_timegraph import CrossbarOptModel
from .bruteforce import bruteforce_cioq_opt_unit
from .decompose import OptSchedule, PacketItinerary, decompose_cioq_opt
from .opt import cioq_opt, cioq_upper_bound, crossbar_opt

__all__ = [
    "MinCostFlow",
    "CIOQOptModel",
    "OptResult",
    "cioq_relaxation_bound",
    "default_horizon",
    "CrossbarOptModel",
    "bruteforce_cioq_opt_unit",
    "OptSchedule",
    "PacketItinerary",
    "decompose_cioq_opt",
    "cioq_opt",
    "cioq_upper_bound",
    "crossbar_opt",
]
