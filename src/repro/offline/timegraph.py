"""Time-expanded offline optimum for CIOQ switches.

The offline optimum OPT of the competitive framework maximizes delivered
value knowing the whole input sequence.  Because all queues are non-FIFO
and values are fixed, OPT never benefits from preemption or from
accepting a packet it will not deliver (rejecting at arrival dominates:
it frees the same capacity earlier).  Hence OPT is exactly the maximum-
value set of packets that can be routed through the time-expanded switch
— arrival slot -> VOQ inventory -> one scheduling-cycle hop -> output
queue inventory -> transmission slot — subject to:

* VOQ occupancy <= B(Q_ij) right after each arrival phase (occupancy is
  largest at that point within a slot),
* at most one packet leaves input port i per scheduling cycle,
* at most one packet enters output queue j per scheduling cycle,
* output occupancy <= B(Q_j) right after each scheduling phase,
* at most one transmission per output port per slot.

The port constraints couple cycle arcs that share no graph node (a
packet must leave through *its own* output), so the exact problem is the
small integer program assembled by :class:`CIOQOptModel` (solved with
HiGHS via :func:`scipy.optimize.milp`; the LP relaxation is almost
always integral, so branching is rare).  :func:`cioq_relaxation_bound`
additionally computes a fast pure-flow *upper bound* that relaxes packet
identity at the input-port nodes — useful for quick sanity bounds on
instances too large for the exact model, and as a cross-check
(``exact <= relaxation`` always).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..simulation.engine import drain_bound
from ..switch.config import SwitchConfig
from ..traffic.trace import Trace
from .mcmf import MinCostFlow


@dataclass
class OptResult:
    """Outcome of an offline-optimum computation.

    Exact solves report ``benefit`` alone; the windowed and bounds
    solvers (:mod:`repro.offline.windowed`, :mod:`repro.offline.bounds`)
    additionally certify a bracket ``opt_lower <= OPT <= opt_upper`` and
    set ``benefit = opt_upper`` (the conservative denominator for
    competitive ratios).  ``mode`` records which solver produced the
    result so downstream consumers never mistake a bracket for an exact
    optimum.
    """

    benefit: float
    n_delivered: int
    accepted_pids: List[int] = field(default_factory=list)
    status: str = "optimal"
    #: Departure events: (slot, cycle, i, j) with multiplicity.
    departures: List[Tuple[int, int, int, int]] = field(default_factory=list)
    #: Transmission events: (slot, j) with multiplicity.
    transmissions: List[Tuple[int, int]] = field(default_factory=list)
    #: Which solver produced the result: "exact", "windowed" or "bounds".
    mode: str = "exact"
    #: Certified bracket ends; ``None`` means "exact" (both equal benefit).
    opt_lower: Optional[float] = None
    opt_upper: Optional[float] = None
    #: Window width in arrival slots (windowed mode only).
    window: Optional[int] = None
    #: Number of windows the trace was split into (1 for exact/bounds).
    n_windows: int = 1

    @property
    def is_exact(self) -> bool:
        """True when ``benefit`` is the true optimum, not a bracket end."""
        return self.mode == "exact" or self.bracket_width == 0.0

    @property
    def bracket(self) -> Tuple[float, float]:
        """Certified ``(lower, upper)`` bracket on the true OPT value."""
        if self.opt_lower is None or self.opt_upper is None:
            return (self.benefit, self.benefit)
        return (self.opt_lower, self.opt_upper)

    @property
    def bracket_width(self) -> float:
        lo, hi = self.bracket
        return hi - lo

    @property
    def rel_bracket_width(self) -> float:
        """Bracket width relative to the upper end (0 for exact)."""
        lo, hi = self.bracket
        return 0.0 if hi == 0 else (hi - lo) / hi


def default_horizon(trace: Trace, config: SwitchConfig) -> int:
    """Arrival slots plus a drain period that always suffices for OPT."""
    return trace.n_slots + drain_bound(config)


class CIOQOptModel:
    """Exact offline optimum for a CIOQ instance via integer programming.

    Variable classes (all integral):

    * ``a_p``    in {0,1} — packet p is accepted *and delivered*,
    * ``x_ijts`` in {0,1} — a packet moves Q_ij -> Q_j in cycle (t, s),
    * ``h_ijt``  in [0, b_in]  — VOQ inventory carried from slot t to t+1,
    * ``g_jt``   in [0, b_out] — output inventory carried from t to t+1,
    * ``w_jt``   in {0,1} — a transmission from output j in slot t.

    Inventory variables at the final slot are simply not created, which
    forces OPT to drain by the horizon (the horizon includes a
    sufficient drain period, so this costs nothing).
    """

    def __init__(
        self,
        trace: Trace,
        config: SwitchConfig,
        horizon: Optional[int] = None,
    ):
        if trace.n_in != config.n_in or trace.n_out != config.n_out:
            raise ValueError("trace/config dimension mismatch")
        self.trace = trace
        self.config = config
        self.horizon = horizon if horizon is not None else default_horizon(
            trace, config
        )
        if trace.packets and self.horizon <= trace.packets[-1].arrival:
            raise ValueError("horizon must extend past the last arrival")
        self._built = False

    # -- model assembly -------------------------------------------------------

    def build(self) -> None:
        if self._built:
            return
        cfg = self.config
        H = self.horizon
        S = cfg.speedup
        packets = self.trace.packets

        # Active windows: (i, j) pairs only matter from their first arrival.
        first_arrival: Dict[Tuple[int, int], int] = {}
        arrivals_at: Dict[Tuple[int, int, int], List[int]] = {}
        for idx, p in enumerate(packets):
            key = (p.src, p.dst)
            if key not in first_arrival or p.arrival < first_arrival[key]:
                first_arrival[key] = p.arrival
            arrivals_at.setdefault((p.src, p.dst, p.arrival), []).append(idx)
        out_first: Dict[int, int] = {}
        for (i, j), t0 in first_arrival.items():
            if j not in out_first or t0 < out_first[j]:
                out_first[j] = t0

        # ---- variable numbering ----
        n_var = 0
        self.var_a: List[int] = []
        for _ in packets:
            self.var_a.append(n_var)
            n_var += 1
        self.var_x: Dict[Tuple[int, int, int, int], int] = {}
        for (i, j), t0 in first_arrival.items():
            for t in range(t0, H):
                for s in range(S):
                    self.var_x[(i, j, t, s)] = n_var
                    n_var += 1
        self.var_h: Dict[Tuple[int, int, int], int] = {}
        for (i, j), t0 in first_arrival.items():
            for t in range(t0, H - 1):
                self.var_h[(i, j, t)] = n_var
                n_var += 1
        self.var_g: Dict[Tuple[int, int], int] = {}
        self.var_w: Dict[Tuple[int, int], int] = {}
        for j, t0 in out_first.items():
            for t in range(t0, H - 1):
                self.var_g[(j, t)] = n_var
                n_var += 1
            for t in range(t0, H):
                self.var_w[(j, t)] = n_var
                n_var += 1
        self.n_var = n_var

        lower = np.zeros(n_var)
        upper = np.ones(n_var)
        for key, v in self.var_h.items():
            upper[v] = cfg.b_in
        for key, v in self.var_g.items():
            upper[v] = cfg.b_out
        self.bounds = Bounds(lower, upper)

        obj = np.zeros(n_var)
        for idx, p in enumerate(packets):
            obj[self.var_a[idx]] = -p.value  # milp minimizes
        self.objective = obj

        # ---- constraint rows (COO assembly) ----
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        lb: List[float] = []
        ub: List[float] = []
        r = 0

        def add_entry(col: int, val: float) -> None:
            rows.append(r)
            cols.append(col)
            vals.append(val)

        # VOQ conservation and capacity, per (i, j, t).
        for (i, j), t0 in first_arrival.items():
            for t in range(t0, H):
                accepted_here = arrivals_at.get((i, j, t), [])
                # Conservation: accepts + h_{t-1} - sum_s x - h_t = 0.
                for idx in accepted_here:
                    add_entry(self.var_a[idx], 1.0)
                if (i, j, t - 1) in self.var_h:
                    add_entry(self.var_h[(i, j, t - 1)], 1.0)
                for s in range(S):
                    add_entry(self.var_x[(i, j, t, s)], -1.0)
                if (i, j, t) in self.var_h:
                    add_entry(self.var_h[(i, j, t)], -1.0)
                lb.append(0.0)
                ub.append(0.0)
                r += 1
                # Capacity: accepts + h_{t-1} <= b_in (only binding when
                # arrivals occur; h alone is bounded by its var bound).
                if accepted_here:
                    for idx in accepted_here:
                        add_entry(self.var_a[idx], 1.0)
                    if (i, j, t - 1) in self.var_h:
                        add_entry(self.var_h[(i, j, t - 1)], 1.0)
                    lb.append(-np.inf)
                    ub.append(float(cfg.b_in))
                    r += 1

        # Port budgets per cycle.
        by_input: Dict[Tuple[int, int, int], List[int]] = {}
        by_output: Dict[Tuple[int, int, int], List[int]] = {}
        for (i, j, t, s), v in self.var_x.items():
            by_input.setdefault((i, t, s), []).append(v)
            by_output.setdefault((j, t, s), []).append(v)
        for group in by_input.values():
            if len(group) == 1:
                continue  # single arc: its own [0,1] bound suffices
            for v in group:
                add_entry(v, 1.0)
            lb.append(-np.inf)
            ub.append(1.0)
            r += 1
        for group in by_output.values():
            if len(group) == 1:
                continue
            for v in group:
                add_entry(v, 1.0)
            lb.append(-np.inf)
            ub.append(1.0)
            r += 1

        # Output queue conservation and capacity, per (j, t).
        x_into_out: Dict[Tuple[int, int], List[int]] = {}
        for (i, j, t, s), v in self.var_x.items():
            x_into_out.setdefault((j, t), []).append(v)
        for j, t0 in out_first.items():
            for t in range(t0, H):
                incoming = x_into_out.get((j, t), [])
                for v in incoming:
                    add_entry(v, 1.0)
                if (j, t - 1) in self.var_g:
                    add_entry(self.var_g[(j, t - 1)], 1.0)
                add_entry(self.var_w[(j, t)], -1.0)
                if (j, t) in self.var_g:
                    add_entry(self.var_g[(j, t)], -1.0)
                lb.append(0.0)
                ub.append(0.0)
                r += 1
                # Capacity: incoming + g_{t-1} <= b_out.
                if incoming:
                    for v in incoming:
                        add_entry(v, 1.0)
                    if (j, t - 1) in self.var_g:
                        add_entry(self.var_g[(j, t - 1)], 1.0)
                    lb.append(-np.inf)
                    ub.append(float(cfg.b_out))
                    r += 1

        self.A = sparse.coo_matrix(
            (vals, (rows, cols)), shape=(r, n_var)
        ).tocsc()
        self.row_lb = np.asarray(lb)
        self.row_ub = np.asarray(ub)
        self._built = True

    # -- solving ----------------------------------------------------------------

    def solve_lp_relaxation(self) -> float:
        """Benefit of the LP relaxation (integrality dropped).

        Always an upper bound on the exact optimum; on most instances it
        is *equal* (the constraint matrix is network-flow-like, so
        fractional vertices are rare) — the diagnostics tests quantify
        this, which is why the MILP solves fast.
        """
        if not self.trace.packets:
            return 0.0
        self.build()
        res = milp(
            c=self.objective,
            constraints=LinearConstraint(self.A, self.row_lb, self.row_ub),
            integrality=np.zeros(self.n_var),
            bounds=self.bounds,
        )
        if res.status != 0 or res.x is None:
            raise RuntimeError(f"OPT LP relaxation failed: {res.message!r}")
        return float(-res.fun)

    def solve(self, extract_schedule: bool = False) -> OptResult:
        """Solve the model to proven optimality."""
        if not self.trace.packets:
            return OptResult(benefit=0.0, n_delivered=0)
        self.build()
        res = milp(
            c=self.objective,
            constraints=LinearConstraint(self.A, self.row_lb, self.row_ub),
            integrality=np.ones(self.n_var),
            bounds=self.bounds,
        )
        if res.status != 0 or res.x is None:
            raise RuntimeError(f"OPT MILP failed: status={res.status} "
                               f"message={res.message!r}")
        x = res.x
        accepted = [
            self.trace.packets[idx].pid
            for idx in range(len(self.trace.packets))
            if x[self.var_a[idx]] > 0.5
        ]
        benefit = float(
            sum(
                self.trace.packets[idx].value
                for idx in range(len(self.trace.packets))
                if x[self.var_a[idx]] > 0.5
            )
        )
        result = OptResult(
            benefit=benefit,
            n_delivered=len(accepted),
            accepted_pids=accepted,
        )
        if extract_schedule:
            for (i, j, t, s), v in self.var_x.items():
                if x[v] > 0.5:
                    result.departures.append((t, s, i, j))
            for (j, t), v in self.var_w.items():
                if x[v] > 0.5:
                    result.transmissions.append((t, j))
            result.departures.sort()
            result.transmissions.sort()
        return result


def cioq_relaxation_bound(
    trace: Trace,
    config: SwitchConfig,
    horizon: Optional[int] = None,
) -> float:
    """Fast flow-based *upper bound* on the CIOQ offline optimum.

    Builds the time-expanded network with explicit input-port and
    output-port cycle nodes.  Routing a unit through ``IP(i,t,s)`` then
    ``OP(j,t,s)`` charges both port budgets but forgets which VOQ the
    unit came from, so the bound may exceed the exact optimum (never the
    other way around).  Solved with the from-scratch
    :class:`~repro.offline.mcmf.MinCostFlow`.
    """
    cfg = config
    H = horizon if horizon is not None else default_horizon(trace, cfg)
    S = cfg.speedup
    packets = trace.packets
    if not packets:
        return 0.0

    counter = [0]

    def new_node() -> int:
        counter[0] += 1
        return counter[0] - 1

    src = new_node()
    snk = new_node()
    pkt_nodes = [new_node() for _ in packets]
    # Split nodes: entry ("a") collects inflow, exit ("b") emits outflow;
    # the a->b arc carries the occupancy capacity.
    v_a = {}
    v_b = {}
    active_pairs = sorted({(p.src, p.dst) for p in packets})
    first_arrival = {}
    for p in packets:
        key = (p.src, p.dst)
        first_arrival[key] = min(first_arrival.get(key, H), p.arrival)
    for key in active_pairs:
        for t in range(first_arrival[key], H):
            v_a[key + (t,)] = new_node()
            v_b[key + (t,)] = new_node()
    ip_a = {}
    ip_b = {}
    op_a = {}
    op_b = {}
    active_inputs = sorted({i for i, _ in active_pairs})
    active_outputs = sorted({j for _, j in active_pairs})
    in_first = {i: min(t for (a, _), t in first_arrival.items() if a == i)
                for i in active_inputs}
    out_first = {j: min(t for (_, b), t in first_arrival.items() if b == j)
                 for j in active_outputs}
    for i in active_inputs:
        for t in range(in_first[i], H):
            for s in range(S):
                ip_a[(i, t, s)] = new_node()
                ip_b[(i, t, s)] = new_node()
    for j in active_outputs:
        for t in range(out_first[j], H):
            for s in range(S):
                op_a[(j, t, s)] = new_node()
                op_b[(j, t, s)] = new_node()
    o_a = {}
    o_b = {}
    for j in active_outputs:
        for t in range(out_first[j], H):
            o_a[(j, t)] = new_node()
            o_b[(j, t)] = new_node()

    g = MinCostFlow(counter[0])
    for k, p in enumerate(packets):
        g.add_edge(src, pkt_nodes[k], 1, -p.value)
        g.add_edge(pkt_nodes[k], v_a[(p.src, p.dst, p.arrival)], 1, 0.0)
    for key in active_pairs:
        i, j = key
        for t in range(first_arrival[key], H):
            g.add_edge(v_a[key + (t,)], v_b[key + (t,)], cfg.b_in, 0.0)
            if t + 1 < H:
                g.add_edge(v_b[key + (t,)], v_a[key + (t + 1,)], cfg.b_in, 0.0)
            for s in range(S):
                g.add_edge(v_b[key + (t,)], ip_a[(i, t, s)], 1, 0.0)
    for (i, t, s), a in ip_a.items():
        g.add_edge(a, ip_b[(i, t, s)], 1, 0.0)
    for i, j in active_pairs:
        for t in range(max(in_first[i], out_first[j]), H):
            for s in range(S):
                g.add_edge(ip_b[(i, t, s)], op_a[(j, t, s)], 1, 0.0)
    for (j, t, s), a in op_a.items():
        g.add_edge(a, op_b[(j, t, s)], 1, 0.0)
        g.add_edge(op_b[(j, t, s)], o_a[(j, t)], 1, 0.0)
    for j in active_outputs:
        for t in range(out_first[j], H):
            g.add_edge(o_a[(j, t)], o_b[(j, t)], cfg.b_out, 0.0)
            g.add_edge(o_b[(j, t)], snk, 1, 0.0)  # one transmission per slot
            if t + 1 < H:
                g.add_edge(o_b[(j, t)], o_a[(j, t + 1)], cfg.b_out, 0.0)

    _flow, cost = g.solve_max_benefit(src, snk)
    return -cost
