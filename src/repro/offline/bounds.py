"""Cheap certified bounds on the offline optimum.

This module is the fast end of the exactness/speed trade-off: both
bounds run in near-linear time in the number of packets and never build
a time-expanded model, so they scale to horizons (10^5-10^6 slots) and
port counts (N = 64+) where the exact MILP is not even constructible.

* :func:`greedy_lower_bound` — run the paper's greedy online policies
  (GM and PG for CIOQ, CGU and CPG for the crossbar) over the trace and
  take the best benefit.  Any feasible schedule is a lower bound on OPT,
  and the primal-dual analyses behind Theorems 1-4 guarantee the gap is
  at most the policy's competitive ratio (a constant), so the bound is
  never vacuous.
* :func:`capacity_upper_bound` — relax the switch to independent
  single-port servers.  Any feasible schedule transmits at most one
  packet per output per slot and departs at most ``speedup`` packets per
  input per slot, so the best value subset that each port could serve in
  isolation (a transversal-matroid optimum, solved exactly by a greedy
  latest-slot assignment) upper-bounds OPT.  The final bound is the
  minimum over the output-side sum, the input-side sum, and the total
  trace value.

:func:`bounds_opt` packages both into an :class:`OptResult` with
``mode="bounds"`` and ``benefit = opt_upper`` (the conservative
competitive-ratio denominator).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..switch.config import SwitchConfig
from ..switch.packet import Packet
from ..traffic.trace import Trace
from .timegraph import OptResult, default_horizon

#: Offline models the bound solvers understand.
_MODELS = ("cioq", "crossbar")


def _check_model(model: str) -> None:
    if model not in _MODELS:
        raise ValueError(f"unknown offline model {model!r}; expected {_MODELS}")


def greedy_lower_bound(
    trace: Trace,
    config: SwitchConfig,
    model: str = "cioq",
    stop_at: Optional[float] = None,
) -> float:
    """Best benefit over the paper's greedy policies — a certified OPT
    lower bound (any feasible schedule's value is at most OPT's).

    ``stop_at`` is an optional certified upper bound on OPT: once a
    policy's benefit reaches it, later policies cannot tighten the
    bracket and are skipped (halves the cost at sub-saturation loads,
    where the first greedy policy already delivers everything the
    capacity bound allows).
    """
    _check_model(model)
    # Deferred imports: offline must stay importable without dragging in
    # the simulation engine (and its backend registry) at module load.
    from ..simulation.engine import run_cioq, run_crossbar

    if model == "cioq":
        from ..core import GMPolicy, PGPolicy

        factories = (GMPolicy, PGPolicy)
        run = run_cioq
    else:
        from ..core import CGUPolicy, CPGPolicy

        factories = (CGUPolicy, CPGPolicy)
        run = run_crossbar
    best = 0.0
    for factory in factories:
        best = max(best, run(factory(), config, trace).benefit)
        # A lower bound meeting the caller's certified upper bound
        # cannot improve further — skip the remaining policy runs.
        # The policy order is fixed, so results stay deterministic.
        if stop_at is not None and best >= stop_at:
            break
    return best


def _server_bound(
    packets: List[Packet],
    horizon: int,
    rate: int,
) -> float:
    """Maximum value a single server can deliver from ``packets``.

    The server serves at most ``rate`` packets per slot, a packet is
    available from its arrival slot, and everything must be served
    before ``horizon``.  Feasible subsets form a transversal matroid
    (packets vs. slot-capacity units), so the greedy that scans packets
    in descending value and assigns each to the *earliest* slot with
    spare capacity at or after its arrival is exact — it is the time
    reversal of the textbook latest-slot-before-deadline rule for unit
    jobs with deadlines.  Union-find over slots ("next slot with spare
    capacity, looking right") keeps it near-linear.
    """
    if not packets:
        return 0.0
    # parent[t] = candidate slot with spare capacity at or above t;
    # slot `horizon` is the "no capacity left" sentinel.
    parent = list(range(horizon + 1))
    spare = [rate] * horizon

    def find(t: int) -> int:
        root = t
        while parent[root] != root:
            root = parent[root]
        while parent[t] != root:
            parent[t], t = root, parent[t]
        return root

    total = 0.0
    order = sorted(range(len(packets)),
                   key=lambda k: (-packets[k].value, packets[k].pid))
    for k in order:
        p = packets[k]
        slot = find(p.arrival)
        if slot >= horizon:
            continue  # no capacity left at or after the arrival: reject
        total += p.value
        spare[slot] -= 1
        if spare[slot] == 0:
            parent[slot] = slot + 1
    return total


def capacity_upper_bound(
    trace: Trace,
    config: SwitchConfig,
    horizon: Optional[int] = None,
) -> float:
    """Port-capacity relaxation upper bound on OPT (both switch models).

    Valid for CIOQ and buffered crossbar alike: every feasible schedule
    satisfies the per-output transmission constraint (<= 1 packet per
    slot) and the per-input departure constraint (<= speedup packets per
    slot), so OPT is at most each port-wise relaxation optimum.
    """
    if horizon is None:
        horizon = default_horizon(trace, config)
    by_out: Dict[int, List[Packet]] = {}
    by_in: Dict[int, List[Packet]] = {}
    for p in trace.packets:
        by_out.setdefault(p.dst, []).append(p)
        by_in.setdefault(p.src, []).append(p)
    out_sum = sum(_server_bound(ps, horizon, 1) for ps in by_out.values())
    in_sum = sum(
        _server_bound(ps, horizon, config.speedup) for ps in by_in.values()
    )
    return min(out_sum, in_sum, trace.total_value)


def bounds_opt(
    trace: Trace,
    config: SwitchConfig,
    model: str = "cioq",
    horizon: Optional[int] = None,
) -> OptResult:
    """Certified ``(greedy lower, capacity upper)`` bracket on OPT."""
    _check_model(model)
    if not trace.packets:
        return OptResult(benefit=0.0, n_delivered=0, mode="bounds",
                         opt_lower=0.0, opt_upper=0.0)
    # Upper first: it is near-free and lets the greedy leg stop as soon
    # as a policy provably cannot be improved upon.
    upper = capacity_upper_bound(trace, config, horizon=horizon)
    lower = greedy_lower_bound(trace, config, model=model, stop_at=upper)
    # Both bounds are certified, so lower <= OPT <= upper in exact
    # arithmetic; clamp against float-summation noise only.
    upper = max(upper, lower)
    return OptResult(
        benefit=upper,
        n_delivered=0,
        mode="bounds",
        opt_lower=lower,
        opt_upper=upper,
    )


def bracket_tuple(result: OptResult) -> Tuple[float, float]:
    """``(opt_lower, opt_upper)`` for any :class:`OptResult` (exact ones
    bracket trivially at ``benefit``)."""
    return result.bracket
