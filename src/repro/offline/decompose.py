"""Per-packet decomposition of an offline-optimum solution.

The MILP solution is an aggregate flow: per-cycle departure counts and
per-slot transmission counts.  For the proof-machinery replay
(:mod:`repro.theory.shadow`) and for human inspection we convert it to a
per-packet timeline.

For unit-value traces (the Lemma 1/8 setting) any consistent assignment
is valid; we use the canonical FIFO assignment:

* within each VOQ (i, j), the k-th accepted packet (by arrival) takes
  the k-th departure cycle — feasible because the aggregate flow
  satisfies the prefix property (departures by any time never exceed
  accepted arrivals by that time),
* within each output queue j, the k-th entering packet takes the k-th
  transmission slot — feasible for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..traffic.trace import Trace
from .timegraph import OptResult


@dataclass
class PacketItinerary:
    """The offline optimum's timeline for one delivered packet."""

    pid: int
    src: int
    dst: int
    arrival: int
    #: Scheduling cycle (slot, cycle-index) of the VOQ -> output transfer.
    depart: Tuple[int, int]
    #: Slot in which the packet is transmitted.
    transmit_slot: int


@dataclass
class OptSchedule:
    """Full per-packet schedule of an offline optimum run."""

    itineraries: Dict[int, PacketItinerary]
    benefit: float

    def departures_in_cycle(self, t: int, s: int) -> List[PacketItinerary]:
        return [
            it for it in self.itineraries.values() if it.depart == (t, s)
        ]

    def validate(self, trace: Trace) -> None:
        """Check ordering feasibility of every itinerary."""
        by_pid = {p.pid: p for p in trace.packets}
        for it in self.itineraries.values():
            p = by_pid[it.pid]
            assert (p.src, p.dst, p.arrival) == (it.src, it.dst, it.arrival)
            assert it.depart[0] >= it.arrival, "departed before arrival"
            assert it.transmit_slot >= it.depart[0], "transmitted before transfer"


def decompose_cioq_opt(trace: Trace, result: OptResult) -> OptSchedule:
    """FIFO per-packet assignment of an extracted CIOQ OPT solution.

    ``result`` must have been produced with ``extract_schedule=True``.
    """
    by_pid = {p.pid: p for p in trace.packets}
    accepted = sorted(
        (by_pid[pid] for pid in result.accepted_pids),
        key=lambda p: (p.arrival, p.pid),
    )

    # Assign departures within each (i, j) FIFO by arrival.
    dep_by_pair: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for t, s, i, j in result.departures:
        dep_by_pair.setdefault((i, j), []).append((t, s))
    for cycles in dep_by_pair.values():
        cycles.sort()
    acc_by_pair: Dict[Tuple[int, int], List] = {}
    for p in accepted:
        acc_by_pair.setdefault((p.src, p.dst), []).append(p)

    itineraries: Dict[int, PacketItinerary] = {}
    entered_out: Dict[int, List[Tuple[Tuple[int, int], int]]] = {}
    for pair, plist in acc_by_pair.items():
        cycles = dep_by_pair.get(pair, [])
        if len(cycles) != len(plist):
            raise ValueError(
                f"decomposition mismatch at VOQ {pair}: {len(plist)} accepted "
                f"vs {len(cycles)} departures"
            )
        for p, cyc in zip(plist, cycles):
            if cyc[0] < p.arrival:
                raise ValueError(
                    f"packet {p.pid} would depart at slot {cyc[0]} before its "
                    f"arrival {p.arrival}"
                )
            itineraries[p.pid] = PacketItinerary(
                pid=p.pid,
                src=p.src,
                dst=p.dst,
                arrival=p.arrival,
                depart=cyc,
                transmit_slot=-1,
            )
            entered_out.setdefault(p.dst, []).append((cyc, p.pid))

    # Assign transmissions within each output FIFO by entry cycle.
    trans_by_out: Dict[int, List[int]] = {}
    for t, j in result.transmissions:
        trans_by_out.setdefault(j, []).append(t)
    for slots in trans_by_out.values():
        slots.sort()
    for j, entries in entered_out.items():
        entries.sort()
        slots = trans_by_out.get(j, [])
        if len(slots) != len(entries):
            raise ValueError(
                f"decomposition mismatch at output {j}: {len(entries)} entries "
                f"vs {len(slots)} transmissions"
            )
        for (cyc, pid), slot in zip(entries, slots):
            if slot < cyc[0]:
                raise ValueError(
                    f"packet {pid} would transmit at slot {slot} before its "
                    f"transfer slot {cyc[0]}"
                )
            itineraries[pid].transmit_slot = slot

    return OptSchedule(itineraries=itineraries, benefit=result.benefit)
