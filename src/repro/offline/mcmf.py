"""Min-cost flow solver (successive shortest paths, from scratch).

Used by the *relaxation* bound on the offline optimum (see
:mod:`repro.offline.timegraph`): the time-expanded switch network with
port-budget nodes is a classical flow network whose max-benefit flow
upper-bounds OPT (it relaxes the requirement that a packet leaving input
port ``i`` in a cycle is the one entering its *own* output queue).  The
exact OPT is computed by the integer program in the same module; this
solver provides a fast sanity bound and is independently useful as a
substrate.

Implementation: adjacency-array residual graph; one Bellman–Ford/SPFA
pass establishes potentials (costs may be negative — packet-value arcs),
then repeated Dijkstra-with-potentials augmentations.  For *max-benefit*
flow (flow value free, total cost minimized) augmentation stops when the
cheapest augmenting path has non-negative real cost.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

INF = float("inf")


class MinCostFlow:
    """Residual-graph min-cost flow over ``n`` nodes.

    Edges are added with :meth:`add_edge` (returning an edge id whose
    flow can be queried after solving).  Two solve modes:

    * :meth:`solve_min_cost_max_flow` — classical: maximize flow value,
      among those minimize cost.
    * :meth:`solve_max_benefit` — maximize ``-cost`` over all feasible
      flows of any value (augment only while paths have negative cost).
    """

    def __init__(self, n: int):
        if n < 2:
            raise ValueError("flow network needs at least 2 nodes")
        self.n = n
        # Parallel arrays: edge i and i^1 are a residual pair.
        self._to: List[int] = []
        self._cap: List[float] = []
        self._cost: List[float] = []
        self._adj: List[List[int]] = [[] for _ in range(n)]
        self._orig_cap: List[float] = []

    def add_edge(self, u: int, v: int, cap: float, cost: float) -> int:
        """Add a directed edge u -> v; returns its id for flow queries."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u},{v}) out of range (n={self.n})")
        if cap < 0:
            raise ValueError(f"negative capacity {cap}")
        eid = len(self._to)
        self._to.append(v)
        self._cap.append(float(cap))
        self._cost.append(float(cost))
        self._adj[u].append(eid)
        self._to.append(u)
        self._cap.append(0.0)
        self._cost.append(-float(cost))
        self._adj[v].append(eid + 1)
        self._orig_cap.append(float(cap))
        self._orig_cap.append(0.0)
        return eid

    def flow_on(self, eid: int) -> float:
        """Flow routed through edge ``eid`` (after a solve)."""
        return self._orig_cap[eid] - self._cap[eid]

    # -- internals -----------------------------------------------------------

    def _initial_potentials(self, src: int) -> List[float]:
        """SPFA (queue-based Bellman–Ford) from ``src``.

        The time-expanded graphs are DAGs, so this terminates quickly;
        it also works for general graphs without negative cycles.
        """
        dist = [INF] * self.n
        dist[src] = 0.0
        in_queue = [False] * self.n
        queue = [src]
        in_queue[src] = True
        qi = 0
        while qi < len(queue):
            u = queue[qi]
            qi += 1
            in_queue[u] = False
            du = dist[u]
            for eid in self._adj[u]:
                if self._cap[eid] <= 0:
                    continue
                v = self._to[eid]
                nd = du + self._cost[eid]
                if nd < dist[v] - 1e-12:
                    dist[v] = nd
                    if not in_queue[v]:
                        queue.append(v)
                        in_queue[v] = True
        return dist

    def _dijkstra(
        self, src: int, snk: int, pot: List[float]
    ) -> Tuple[List[float], List[int]]:
        """Dijkstra on reduced costs; returns (dist, parent-edge)."""
        dist = [INF] * self.n
        parent_edge = [-1] * self.n
        dist[src] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, src)]
        visited = [False] * self.n
        while heap:
            d, u = heapq.heappop(heap)
            if visited[u]:
                continue
            visited[u] = True
            if u == snk:
                # All remaining labels are >= dist[snk]; safe to stop.
                break
            for eid in self._adj[u]:
                if self._cap[eid] <= 0:
                    continue
                v = self._to[eid]
                if visited[v] or pot[v] == INF:
                    continue
                rc = self._cost[eid] + pot[u] - pot[v]
                # Reduced costs are non-negative up to float noise.
                if rc < 0:
                    rc = 0.0
                nd = d + rc
                if nd < dist[v] - 1e-12:
                    dist[v] = nd
                    parent_edge[v] = eid
                    heapq.heappush(heap, (nd, v))
        return dist, parent_edge

    def _augment(self, src: int, snk: int, parent_edge: List[int]) -> Tuple[float, float]:
        """Push the bottleneck along the found path; returns (flow, cost)."""
        bottleneck = INF
        v = snk
        while v != src:
            eid = parent_edge[v]
            bottleneck = min(bottleneck, self._cap[eid])
            v = self._to[eid ^ 1]
        cost = 0.0
        v = snk
        while v != src:
            eid = parent_edge[v]
            self._cap[eid] -= bottleneck
            self._cap[eid ^ 1] += bottleneck
            cost += self._cost[eid] * bottleneck
            v = self._to[eid ^ 1]
        return bottleneck, cost

    def _run(
        self, src: int, snk: int, stop_when_nonnegative: bool
    ) -> Tuple[float, float]:
        pot = self._initial_potentials(src)
        if pot[snk] == INF:
            return 0.0, 0.0
        total_flow = 0.0
        total_cost = 0.0
        while True:
            dist, parent_edge = self._dijkstra(src, snk, pot)
            if dist[snk] == INF:
                break
            real_path_cost = dist[snk] + pot[snk] - pot[src]
            if stop_when_nonnegative and real_path_cost >= -1e-9:
                break
            flow, cost = self._augment(src, snk, parent_edge)
            total_flow += flow
            total_cost += cost
            for v in range(self.n):
                if dist[v] < INF and pot[v] < INF:
                    pot[v] += dist[v]
        return total_flow, total_cost

    # -- public solves --------------------------------------------------------

    def solve_min_cost_max_flow(self, src: int, snk: int) -> Tuple[float, float]:
        """Maximize flow from src to snk; among max flows minimize cost.

        Correct when every src->snk augmenting path in the *residual*
        graph keeps non-negative reduced costs — true for graphs without
        negative cycles (our DAG-shaped instances).
        Returns ``(flow_value, total_cost)``.
        """
        return self._run(src, snk, stop_when_nonnegative=False)

    def solve_max_benefit(self, src: int, snk: int) -> Tuple[float, float]:
        """Find the flow minimizing total cost with *free* flow value.

        With packet arcs costed ``-v(p)``, the returned ``-cost`` is the
        maximum achievable benefit.  Returns ``(flow_value, total_cost)``.
        """
        return self._run(src, snk, stop_when_nonnegative=True)
