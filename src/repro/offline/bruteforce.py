"""Exhaustive offline optimum for tiny unit-value CIOQ instances.

Independent validation oracle for the integer-programming model: a
depth-first search over all admissible schedules.  Exponential — only
usable for instances with a handful of ports, slots and packets — but it
makes *no* modelling assumptions beyond the switch semantics themselves,
so agreement with :class:`~repro.offline.timegraph.CIOQOptModel` on
random tiny instances is strong evidence both are right.

Two wlog reductions keep the search tractable for unit values:

* **greedy acceptance** — all packets are identical, so accepting
  whenever the VOQ has space is optimal (an exchange argument swaps any
  rejected-now/accepted-later pair),
* **greedy transmission** — sending from every non-empty output queue
  is optimal (holding a unit packet back never helps).

The branching is therefore only over the per-cycle matchings.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

from ..simulation.engine import drain_bound
from ..switch.config import SwitchConfig
from ..traffic.trace import Trace


def _all_matchings(edges: Tuple[Tuple[int, int], ...]) -> List[Tuple[Tuple[int, int], ...]]:
    """Enumerate *all* matchings (including the empty and non-maximal
    ones) of the given edge set.

    Each matching is generated exactly once by extending only with
    higher-indexed edges, so no deduplication is needed.  Exhaustive by
    design: the oracle must not assume any dominance property.
    """
    results: List[Tuple[Tuple[int, int], ...]] = []

    def extend(start: int, current: List[Tuple[int, int]], used_i: int, used_j: int):
        results.append(tuple(current))
        for k in range(start, len(edges)):
            i, j = edges[k]
            if used_i & (1 << i) or used_j & (1 << j):
                continue
            current.append((i, j))
            extend(k + 1, current, used_i | (1 << i), used_j | (1 << j))
            current.pop()

    extend(0, [], 0, 0)
    return results


def bruteforce_cioq_opt_unit(trace: Trace, config: SwitchConfig) -> int:
    """Maximum number of deliverable packets, by exhaustive search.

    Only valid for unit-value traces; raises otherwise.
    """
    if not trace.is_unit_valued:
        raise ValueError("brute force oracle supports unit-value traces only")
    n_in, n_out = config.n_in, config.n_out
    if n_in > 4 or n_out > 4:
        raise ValueError("brute force oracle limited to 4x4 switches")
    horizon = trace.n_slots + drain_bound(config)
    S = config.speedup
    b_in, b_out = config.b_in, config.b_out

    arrivals: List[Tuple[Tuple[int, int], ...]] = []
    for t in range(trace.n_slots):
        counts: Dict[Tuple[int, int], int] = {}
        for p in trace.arrivals(t):
            counts[(p.src, p.dst)] = counts.get((p.src, p.dst), 0) + 1
        arrivals.append(tuple(sorted(counts.items())))

    VoqState = Tuple[int, ...]  # row-major VOQ occupancy counts
    OutState = Tuple[int, ...]

    def idx(i: int, j: int) -> int:
        return i * n_out + j

    @lru_cache(maxsize=None)
    def best_from(t: int, voq: VoqState, out: OutState) -> int:
        if t >= horizon:
            return 0
        if t >= trace.n_slots and sum(voq) == 0 and sum(out) == 0:
            return 0

        # Arrival phase (greedy acceptance is wlog for unit values).
        voq_l = list(voq)
        if t < trace.n_slots:
            for (i, j), cnt in arrivals[t]:
                space = b_in - voq_l[idx(i, j)]
                voq_l[idx(i, j)] += min(cnt, space)

        # Scheduling phase: branch over matchings, cycle by cycle.
        def after_cycles(s: int, voq_s: Tuple[int, ...], out_s: Tuple[int, ...]) -> int:
            if s == S:
                # Transmission phase: greedy send (wlog for unit values).
                sent = sum(1 for o in out_s if o > 0)
                new_out = tuple(o - 1 if o > 0 else 0 for o in out_s)
                return sent + best_from(t + 1, voq_s, new_out)
            edges = tuple(
                (i, j)
                for i in range(n_in)
                for j in range(n_out)
                if voq_s[idx(i, j)] > 0 and out_s[j] < b_out
            )
            best = 0
            for matching in _all_matchings(edges):
                v2 = list(voq_s)
                o2 = list(out_s)
                for i, j in matching:
                    v2[idx(i, j)] -= 1
                    o2[j] += 1
                best = max(best, after_cycles(s + 1, tuple(v2), tuple(o2)))
            return best

        return after_cycles(0, tuple(voq_l), tuple(out))

    result = best_from(0, tuple([0] * (n_in * n_out)), tuple([0] * n_out))
    best_from.cache_clear()
    return result
