"""Time-expanded offline optimum for buffered crossbar switches.

Same modelling approach as :mod:`repro.offline.timegraph`, extended with
the crosspoint stage.  Each scheduling cycle (t, s) splits into the
input subphase (VOQ -> crosspoint, at most one packet per *input port*)
followed by the output subphase (crosspoint -> output queue, at most one
packet per *output port*); a packet may traverse both subphases of the
same cycle (it is present in the crosspoint queue when the output
subphase runs).

Crosspoint occupancy peaks right after the input subphase, so the
capacity constraint is ``carry_in + y <= B(C_ij)`` per cycle.

Variable classes (all integral):

* ``a_p``    in {0,1}        — packet p accepted and delivered,
* ``y_ijts`` in {0,1}        — input-subphase transfer Q_ij -> C_ij,
* ``z_ijts`` in {0,1}        — output-subphase transfer C_ij -> Q_j,
* ``h_ijt``  in [0, b_in]    — VOQ inventory slot t -> t+1,
* ``cc_ijts`` in [0, b_cross] — crosspoint inventory cycle -> next cycle,
* ``g_jt``   in [0, b_out]   — output inventory slot t -> t+1,
* ``w_jt``   in {0,1}        — transmission from output j in slot t.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..switch.config import SwitchConfig
from ..traffic.trace import Trace
from .timegraph import OptResult, default_horizon


class CrossbarOptModel:
    """Exact offline optimum for a buffered crossbar instance."""

    def __init__(
        self,
        trace: Trace,
        config: SwitchConfig,
        horizon: Optional[int] = None,
    ):
        if trace.n_in != config.n_in or trace.n_out != config.n_out:
            raise ValueError("trace/config dimension mismatch")
        self.trace = trace
        self.config = config
        self.horizon = horizon if horizon is not None else default_horizon(
            trace, config
        )
        if trace.packets and self.horizon <= trace.packets[-1].arrival:
            raise ValueError("horizon must extend past the last arrival")
        self._built = False

    def build(self) -> None:
        if self._built:
            return
        cfg = self.config
        H = self.horizon
        S = cfg.speedup
        packets = self.trace.packets

        first_arrival: Dict[Tuple[int, int], int] = {}
        arrivals_at: Dict[Tuple[int, int, int], List[int]] = {}
        for idx, p in enumerate(packets):
            key = (p.src, p.dst)
            if key not in first_arrival or p.arrival < first_arrival[key]:
                first_arrival[key] = p.arrival
            arrivals_at.setdefault((p.src, p.dst, p.arrival), []).append(idx)
        out_first: Dict[int, int] = {}
        for (i, j), t0 in first_arrival.items():
            if j not in out_first or t0 < out_first[j]:
                out_first[j] = t0

        def cycles_from(t0: int):
            for t in range(t0, H):
                for s in range(S):
                    yield t, s

        # ---- variable numbering ----
        n_var = 0
        self.var_a: List[int] = []
        for _ in packets:
            self.var_a.append(n_var)
            n_var += 1
        self.var_y: Dict[Tuple[int, int, int, int], int] = {}
        self.var_z: Dict[Tuple[int, int, int, int], int] = {}
        self.var_cc: Dict[Tuple[int, int, int, int], int] = {}
        for (i, j), t0 in first_arrival.items():
            for t, s in cycles_from(t0):
                self.var_y[(i, j, t, s)] = n_var
                n_var += 1
                self.var_z[(i, j, t, s)] = n_var
                n_var += 1
                if not (t == H - 1 and s == S - 1):
                    self.var_cc[(i, j, t, s)] = n_var
                    n_var += 1
        self.var_h: Dict[Tuple[int, int, int], int] = {}
        for (i, j), t0 in first_arrival.items():
            for t in range(t0, H - 1):
                self.var_h[(i, j, t)] = n_var
                n_var += 1
        self.var_g: Dict[Tuple[int, int], int] = {}
        self.var_w: Dict[Tuple[int, int], int] = {}
        for j, t0 in out_first.items():
            for t in range(t0, H - 1):
                self.var_g[(j, t)] = n_var
                n_var += 1
            for t in range(t0, H):
                self.var_w[(j, t)] = n_var
                n_var += 1
        self.n_var = n_var

        lower = np.zeros(n_var)
        upper = np.ones(n_var)
        for v in self.var_h.values():
            upper[v] = cfg.b_in
        for v in self.var_cc.values():
            upper[v] = cfg.b_cross
        for v in self.var_g.values():
            upper[v] = cfg.b_out
        self.bounds = Bounds(lower, upper)

        obj = np.zeros(n_var)
        for idx, p in enumerate(packets):
            obj[self.var_a[idx]] = -p.value
        self.objective = obj

        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        lb: List[float] = []
        ub: List[float] = []
        r = 0

        def add_entry(col: int, val: float) -> None:
            rows.append(r)
            cols.append(col)
            vals.append(val)

        def prev_cycle(t: int, s: int, t0: int) -> Optional[Tuple[int, int]]:
            if s > 0:
                return (t, s - 1)
            if t > t0:
                return (t - 1, S - 1)
            return None

        # VOQ conservation and capacity.
        for (i, j), t0 in first_arrival.items():
            for t in range(t0, H):
                accepted_here = arrivals_at.get((i, j, t), [])
                for idx in accepted_here:
                    add_entry(self.var_a[idx], 1.0)
                if (i, j, t - 1) in self.var_h:
                    add_entry(self.var_h[(i, j, t - 1)], 1.0)
                for s in range(S):
                    add_entry(self.var_y[(i, j, t, s)], -1.0)
                if (i, j, t) in self.var_h:
                    add_entry(self.var_h[(i, j, t)], -1.0)
                lb.append(0.0)
                ub.append(0.0)
                r += 1
                if accepted_here:
                    for idx in accepted_here:
                        add_entry(self.var_a[idx], 1.0)
                    if (i, j, t - 1) in self.var_h:
                        add_entry(self.var_h[(i, j, t - 1)], 1.0)
                    lb.append(-np.inf)
                    ub.append(float(cfg.b_in))
                    r += 1

        # Input-port budget per (i, t, s): sum_j y <= 1.
        by_input: Dict[Tuple[int, int, int], List[int]] = {}
        for (i, j, t, s), v in self.var_y.items():
            by_input.setdefault((i, t, s), []).append(v)
        for group in by_input.values():
            if len(group) == 1:
                continue
            for v in group:
                add_entry(v, 1.0)
            lb.append(-np.inf)
            ub.append(1.0)
            r += 1

        # Crosspoint conservation and mid-cycle capacity per (i, j, t, s).
        for (i, j), t0 in first_arrival.items():
            for t, s in cycles_from(t0):
                pc = prev_cycle(t, s, t0)
                carry_in = self.var_cc.get((i, j) + pc) if pc else None
                # Conservation: carry_in + y - z - carry_out = 0.
                if carry_in is not None:
                    add_entry(carry_in, 1.0)
                add_entry(self.var_y[(i, j, t, s)], 1.0)
                add_entry(self.var_z[(i, j, t, s)], -1.0)
                carry_out = self.var_cc.get((i, j, t, s))
                if carry_out is not None:
                    add_entry(carry_out, -1.0)
                lb.append(0.0)
                ub.append(0.0)
                r += 1
                # Mid-cycle capacity: carry_in + y <= b_cross.
                if carry_in is not None:
                    add_entry(carry_in, 1.0)
                    add_entry(self.var_y[(i, j, t, s)], 1.0)
                    lb.append(-np.inf)
                    ub.append(float(cfg.b_cross))
                    r += 1

        # Output-port budget per (j, t, s): sum_i z <= 1.
        by_output: Dict[Tuple[int, int, int], List[int]] = {}
        for (i, j, t, s), v in self.var_z.items():
            by_output.setdefault((j, t, s), []).append(v)
        for group in by_output.values():
            if len(group) == 1:
                continue
            for v in group:
                add_entry(v, 1.0)
            lb.append(-np.inf)
            ub.append(1.0)
            r += 1

        # Output queue conservation and capacity per (j, t).
        z_into_out: Dict[Tuple[int, int], List[int]] = {}
        for (i, j, t, s), v in self.var_z.items():
            z_into_out.setdefault((j, t), []).append(v)
        for j, t0 in out_first.items():
            for t in range(t0, H):
                incoming = z_into_out.get((j, t), [])
                for v in incoming:
                    add_entry(v, 1.0)
                if (j, t - 1) in self.var_g:
                    add_entry(self.var_g[(j, t - 1)], 1.0)
                add_entry(self.var_w[(j, t)], -1.0)
                if (j, t) in self.var_g:
                    add_entry(self.var_g[(j, t)], -1.0)
                lb.append(0.0)
                ub.append(0.0)
                r += 1
                if incoming:
                    for v in incoming:
                        add_entry(v, 1.0)
                    if (j, t - 1) in self.var_g:
                        add_entry(self.var_g[(j, t - 1)], 1.0)
                    lb.append(-np.inf)
                    ub.append(float(cfg.b_out))
                    r += 1

        self.A = sparse.coo_matrix(
            (vals, (rows, cols)), shape=(r, n_var)
        ).tocsc()
        self.row_lb = np.asarray(lb)
        self.row_ub = np.asarray(ub)
        self._built = True

    def solve_lp_relaxation(self) -> float:
        """Benefit of the LP relaxation (upper bound on the optimum)."""
        if not self.trace.packets:
            return 0.0
        self.build()
        res = milp(
            c=self.objective,
            constraints=LinearConstraint(self.A, self.row_lb, self.row_ub),
            integrality=np.zeros(self.n_var),
            bounds=self.bounds,
        )
        if res.status != 0 or res.x is None:
            raise RuntimeError(
                f"crossbar OPT LP relaxation failed: {res.message!r}"
            )
        return float(-res.fun)

    def solve(self, extract_schedule: bool = False) -> OptResult:
        """Solve to proven optimality."""
        if not self.trace.packets:
            return OptResult(benefit=0.0, n_delivered=0)
        self.build()
        res = milp(
            c=self.objective,
            constraints=LinearConstraint(self.A, self.row_lb, self.row_ub),
            integrality=np.ones(self.n_var),
            bounds=self.bounds,
        )
        if res.status != 0 or res.x is None:
            raise RuntimeError(
                f"crossbar OPT MILP failed: status={res.status} "
                f"message={res.message!r}"
            )
        x = res.x
        accepted = [
            self.trace.packets[idx].pid
            for idx in range(len(self.trace.packets))
            if x[self.var_a[idx]] > 0.5
        ]
        benefit = float(
            sum(
                self.trace.packets[idx].value
                for idx in range(len(self.trace.packets))
                if x[self.var_a[idx]] > 0.5
            )
        )
        result = OptResult(
            benefit=benefit,
            n_delivered=len(accepted),
            accepted_pids=accepted,
        )
        if extract_schedule:
            # Departures reported at both stages; shadow replay for the
            # crossbar consumes input-subphase (y) and output-subphase (z)
            # events separately via the raw maps below.
            self.y_events = sorted(
                (t, s, i, j) for (i, j, t, s), v in self.var_y.items()
                if x[v] > 0.5
            )
            self.z_events = sorted(
                (t, s, i, j) for (i, j, t, s), v in self.var_z.items()
                if x[v] > 0.5
            )
            result.departures = list(self.y_events)
            for (j, t), v in self.var_w.items():
                if x[v] > 0.5:
                    result.transmissions.append((t, j))
            result.transmissions.sort()
        return result
