"""Content-addressed, versioned result store (the sweep cache, grown up).

:class:`ResultStore` generalizes the flat per-executor JSON cache that
:class:`~repro.parallel.SweepExecutor` carried since PR 1 into a shared
substrate every farm component can point at:

* **Content addressing** — entries are keyed by the SHA-256 of the full
  point spec (policy, config, trace content, seed, OPT mode and the
  cache version; see :meth:`repro.parallel.SweepExecutor.cache_key`).
  Identical work always lands on the identical key, so any number of
  sweeps, scenarios, replication ladders and farm jobs share results.
* **Sharded layout** — entries live under two-hex-character shard
  directories (``<root>/ab/<key>.json``) so million-entry stores never
  put a million files in one directory.  Flat ``<root>/<key>.json``
  files written by the pre-farm cache are still read (legacy
  compatibility) but never written.
* **Versioned entries + GC** — every written entry wraps its payload as
  ``{"cache_version": V, "payload": ...}``.  Because the version is
  *also* hashed into the key, bumping ``CACHE_VERSION`` makes every old
  entry miss cleanly; :meth:`ResultStore.gc` then reclaims the
  unreachable files (plus torn temp files and corrupt entries) without
  touching live ones.
* **Concurrent-writer safety** — writes go through ``mkstemp`` +
  ``os.replace`` (atomic publish: a reader sees the old entry, no
  entry, or the new entry — never a torn file), and :meth:`claim` /
  :meth:`release` / :meth:`wait_for` implement a cooperative
  exactly-once protocol: an executor only runs points whose claim file
  it created (``O_CREAT | O_EXCL``), and polls the store for points
  claimed by another *live* writer.  Claims carry the claimer's pid;
  claims held by dead processes are stolen, so a killed study never
  wedges the points it was holding.

The store never deletes an entry except in :meth:`gc`, and every method
tolerates concurrent mutation of the directory tree (races surface as a
miss, never as an exception or a torn read).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, Iterator, Optional

__all__ = ["ResultStore"]

#: Field wrapping stored payloads; its presence distinguishes a sharded
#: versioned entry from a legacy flat payload.
_VERSION_FIELD = "cache_version"


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a same-host pid."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return False
    return True


class ResultStore:
    """A shared on-disk payload store under ``root``.

    Parameters
    ----------
    version:
        The cache schema version entries are stamped with (callers pass
        :data:`repro.parallel.CACHE_VERSION`).  :meth:`gc` reclaims
        entries stamped with any *other* version — they are unreachable,
        because the version is part of every key.
    """

    def __init__(self, root: str, version: int):
        self.root = root
        self.version = int(version)

    # -- layout --------------------------------------------------------------

    def path(self, key: str) -> str:
        """Sharded entry path for ``key`` (where new entries are written)."""
        return os.path.join(self.root, key[:2], f"{key}.json")

    def legacy_path(self, key: str) -> str:
        """Flat pre-farm cache path (read-only compatibility)."""
        return os.path.join(self.root, f"{key}.json")

    def claim_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.claim")

    # -- read / write --------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The payload stored under ``key``, or ``None`` on any miss
        (absent, torn, corrupt, or unreadable — never an exception)."""
        for path in (self.path(key), self.legacy_path(key)):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    entry = json.load(fh)
            except (OSError, ValueError):
                continue
            if not isinstance(entry, dict):
                continue
            if _VERSION_FIELD in entry:
                # A versioned entry under a key hashed from another
                # version cannot happen (the version is in the key), but
                # be defensive: a mismatched stamp is a miss.
                if entry.get(_VERSION_FIELD) != self.version:
                    continue
                payload = entry.get("payload")
                return payload if isinstance(payload, dict) else None
            return entry  # legacy flat payload
        return None

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def put(self, key: str, payload: Dict[str, object]) -> str:
        """Atomically publish ``payload`` under ``key``; returns the path.

        Safe under concurrent writers: both write the same bytes for the
        same key (payloads are pure functions of their points), and
        ``os.replace`` makes the last publish win without a torn state.
        """
        path = self.path(key)
        shard = os.path.dirname(path)
        os.makedirs(shard, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=shard, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump({_VERSION_FIELD: self.version, "payload": payload},
                          fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # -- exactly-once claims -------------------------------------------------

    def claim(self, key: str) -> bool:
        """Try to become the executor of ``key``'s point.

        Returns ``True`` when this process created the claim file (it
        must eventually :meth:`put` + :meth:`release`), ``False`` when a
        *live* process already holds the claim.  Claims held by dead
        pids are stolen transparently.
        """
        path = self.claim_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        for _ in range(2):  # second pass after stealing a dead claim
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._claimer(key) is None:
                    # Claimer is gone (crashed between claim and
                    # release); steal and retry the exclusive create.
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                    continue
                return False
            except OSError:  # pragma: no cover - unwritable store
                return True  # degrade to uncoordinated (idempotent) mode
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump({"pid": os.getpid()}, fh)
            return True
        return False

    def release(self, key: str) -> None:
        """Drop this process's claim on ``key`` (idempotent)."""
        try:
            os.unlink(self.claim_path(key))
        except OSError:
            pass

    def _claimer(self, key: str) -> Optional[int]:
        """The live pid holding ``key``'s claim, else ``None``."""
        try:
            with open(self.claim_path(key), "r", encoding="utf-8") as fh:
                pid = int(json.load(fh).get("pid", 0))
        except (OSError, ValueError):
            # Torn/vanished claim file: a just-created empty claim reads
            # as claimed-by-unknown; treat as live briefly (the owner
            # writes its pid immediately after the exclusive create).
            return -1 if os.path.exists(self.claim_path(key)) else None
        return pid if _pid_alive(pid) else None

    def wait_for(self, key: str, timeout: float = 60.0,
                 poll: float = 0.02) -> Optional[Dict[str, object]]:
        """Wait for another executor to publish ``key``.

        Polls until the payload appears, the claimer dies or releases
        without publishing, or ``timeout`` elapses.  Returns the payload
        or ``None`` (meaning: compute it yourself — payloads are pure,
        so a duplicated computation is wasteful but never wrong).
        """
        deadline = time.monotonic() + timeout
        while True:
            payload = self.get(key)
            if payload is not None:
                return payload
            claimer = self._claimer(key)
            if claimer is None:
                # Claim gone or claimer dead: check once more for a
                # publish that raced the release, then give up.
                return self.get(key)
            if time.monotonic() >= deadline:
                return None
            time.sleep(poll)

    # -- maintenance ---------------------------------------------------------

    def _shards(self) -> Iterator[str]:
        try:
            names = os.listdir(self.root)
        except OSError:
            return
        for name in sorted(names):
            path = os.path.join(self.root, name)
            if len(name) == 2 and os.path.isdir(path):
                yield path

    def keys(self) -> Iterator[str]:
        """Every key with a (sharded) entry file, in sorted order."""
        for shard in self._shards():
            try:
                names = sorted(os.listdir(shard))
            except OSError:
                continue
            for name in names:
                if name.endswith(".json"):
                    yield name[: -len(".json")]

    def stats(self) -> Dict[str, int]:
        """Entry/legacy/claim counts and total payload bytes on disk."""
        entries = claims = legacy = total = 0
        for shard in self._shards():
            try:
                names = os.listdir(shard)
            except OSError:
                continue
            for name in names:
                path = os.path.join(shard, name)
                if name.endswith(".json"):
                    entries += 1
                    try:
                        total += os.path.getsize(path)
                    except OSError:
                        pass
                elif name.endswith(".claim"):
                    claims += 1
        try:
            for name in os.listdir(self.root):
                if name.endswith(".json"):
                    legacy += 1
        except OSError:
            pass
        return {"entries": entries, "legacy_entries": legacy,
                "claims": claims, "bytes": total}

    def gc(self, include_legacy: bool = False) -> Dict[str, int]:
        """Reclaim unreachable files; returns removal counts.

        Removes: entries stamped with a ``cache_version`` other than
        this store's (unreachable — the version is hashed into every
        key), corrupt/torn entries, leftover ``*.tmp`` files, and claim
        files held by dead processes.  Legacy flat entries (no version
        stamp) are only removed with ``include_legacy=True`` — they may
        still be read by current keys.
        """
        removed = {"stale": 0, "corrupt": 0, "tmp": 0, "claims": 0,
                   "legacy": 0, "kept": 0}

        def _unlink(path: str, bucket: str) -> None:
            try:
                os.unlink(path)
                removed[bucket] += 1
            except OSError:
                pass

        for shard in self._shards():
            try:
                names = sorted(os.listdir(shard))
            except OSError:
                continue
            for name in names:
                path = os.path.join(shard, name)
                if name.endswith(".tmp"):
                    _unlink(path, "tmp")
                    continue
                if name.endswith(".claim"):
                    key = name[: -len(".claim")]
                    if self._claimer(key) is None:
                        _unlink(path, "claims")
                    continue
                if not name.endswith(".json"):
                    continue
                try:
                    with open(path, "r", encoding="utf-8") as fh:
                        entry = json.load(fh)
                except (OSError, ValueError):
                    _unlink(path, "corrupt")
                    continue
                if (not isinstance(entry, dict)
                        or _VERSION_FIELD not in entry):
                    _unlink(path, "corrupt")
                elif entry[_VERSION_FIELD] != self.version:
                    _unlink(path, "stale")
                else:
                    removed["kept"] += 1
        # Root level: torn temp files and (optionally) legacy entries.
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            names = []
        for name in names:
            path = os.path.join(self.root, name)
            if not os.path.isfile(path):
                continue
            if name.endswith(".tmp"):
                _unlink(path, "tmp")
            elif name.endswith(".json"):
                if include_legacy:
                    _unlink(path, "legacy")
                else:
                    removed["kept"] += 1
        return removed
