"""The experiment-farm service loop (``repro serve``).

:func:`serve` treats scenario runs as requests: it drains a
:class:`~repro.farm.jobs.JobQueue`, executing each job through **one**
shared :class:`~repro.parallel.SweepExecutor` whose
:class:`~repro.farm.pool.PersistentPool` and
:class:`~repro.farm.store.ResultStore` persist across jobs — so the
worker-spawn cost is paid once per server (not once per job) and every
job's points hit the shared content-addressed store.  Combined with the
executor's incremental scheduling (only store-missing points execute)
and the queue's ``running/`` recovery, a killed server resumes exactly
where it died: re-serving the same queue re-runs only the points the
dead server never published, and the final artifacts are byte-identical
to a fresh serial run (pinned by the farm CI smoke).

Jobs are built by :func:`build_job` (the ``repro submit`` payload): a
registered scenario name or an inline spec dict, optional overrides
(slots/seeds), replication options, and OPT solver selection.  The
artifacts a job writes are exactly what ``repro scenarios run`` would
have written — the farm changes *when and where* work happens, never
its bytes.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from ..parallel import SweepExecutor, SweepKilled
from ..simulation.backends import DEFAULT_BACKEND
from .jobs import JobQueue
from .pool import PersistentPool

__all__ = ["build_job", "run_job", "serve", "farm_status"]


def build_job(
    scenario: Optional[str] = None,
    spec_dict: Optional[Dict[str, object]] = None,
    slots: Optional[int] = None,
    seeds: Optional[List[int]] = None,
    replicates: Optional[int] = None,
    opt_mode: str = "exact",
    opt_window: Optional[int] = None,
) -> Dict[str, object]:
    """A queue-serializable job payload (see :func:`run_job`)."""
    if (scenario is None) == (spec_dict is None):
        raise ValueError("a job needs a scenario name or a spec, not both")
    job: Dict[str, object] = {"opt_mode": opt_mode}
    if scenario is not None:
        job["scenario"] = scenario
    if spec_dict is not None:
        job["spec"] = spec_dict
    if slots is not None:
        job["slots"] = int(slots)
    if seeds is not None:
        job["seeds"] = [int(s) for s in seeds]
    if replicates is not None:
        job["replicates"] = int(replicates)
    if opt_window is not None:
        job["opt_window"] = int(opt_window)
    return job


def _resolve_spec(job: Dict[str, object]):
    from ..scenarios import ScenarioSpec, get_scenario

    if job.get("spec") is not None:
        spec = ScenarioSpec.from_dict(job["spec"])
    else:
        spec = get_scenario(str(job["scenario"]))
    return spec.with_overrides(slots=job.get("slots"),
                               seeds=job.get("seeds"))


def run_job(job: Dict[str, object], executor: SweepExecutor,
            out_dir: str = "results") -> Dict[str, object]:
    """Execute one job through ``executor``; returns a result summary.

    Replicated when the resolved spec carries a ``replicates`` block or
    the job asks for one — mirroring ``repro scenarios run``, so a job
    and a CLI run of the same scenario write identical artifacts.
    """
    spec = _resolve_spec(job)
    replicated = bool(spec.replicates) or job.get("replicates") is not None
    opt_mode = str(job.get("opt_mode", "exact"))
    opt_window = job.get("opt_window")
    if replicated:
        from ..stats import (
            ReplicationPlan,
            replicate_scenario,
            write_replicated_artifacts,
        )

        plan = ReplicationPlan.from_spec(spec, n=job.get("replicates"))
        rrun = replicate_scenario(spec, plan=plan, executor=executor,
                                  opt_mode=opt_mode, opt_window=opt_window)
        paths = write_replicated_artifacts(rrun, out_dir)
        name = rrun.spec.name
    else:
        from ..scenarios import run_scenario, write_artifacts

        run = run_scenario(spec, executor=executor, opt_mode=opt_mode,
                           opt_window=opt_window)
        paths = write_artifacts(run, out_dir)
        name = run.spec.name
    return {"scenario": name, "replicated": replicated,
            "artifacts": list(paths)}


def serve(
    queue_root: str,
    out_dir: str = "results",
    cache_dir: Optional[str] = None,
    workers: int = 0,
    backend: str = DEFAULT_BACKEND,
    max_jobs: Optional[int] = None,
    idle_timeout: Optional[float] = None,
    poll: float = 0.2,
    metrics=None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Drain ``queue_root`` until ``max_jobs`` jobs are finished or the
    queue stays empty for ``idle_timeout`` seconds (forever when both
    are ``None``); returns a serve summary dict.

    One persistent pool + executor serves every job.  ``metrics`` is an
    optional :class:`repro.obs.InMemoryRecorder`: the loop maintains the
    farm gauges/counters documented in ``docs/observability.md``
    (``farm_queue_depth``, ``farm_jobs_total``, ...) and quarantines
    per-worker busy time in its wall-time section.  A job that raises is
    marked failed and the loop continues; a :class:`SweepKilled` fault
    injection propagates (the job stays in ``running/`` for the next
    server's recovery pass).
    """
    queue = JobQueue(queue_root)
    requeued = queue.requeue_stale()
    if requeued and progress is not None:
        progress(f"requeued {len(requeued)} stale running job(s): "
                 f"{', '.join(requeued)}")
    pool = PersistentPool(workers) if workers > 1 else None
    executor = SweepExecutor(workers=workers, cache_dir=cache_dir,
                             backend=backend, pool=pool)
    served = failed = 0
    idle_since = time.monotonic()
    try:
        while True:
            if max_jobs is not None and served + failed >= max_jobs:
                break
            job = queue.claim_next()
            if metrics is not None:
                metrics.gauge("farm_queue_depth", queue.depth())
                metrics.gauge("farm_workers", max(1, workers))
            if job is None:
                if (idle_timeout is not None
                        and time.monotonic() - idle_since >= idle_timeout):
                    break
                time.sleep(poll)
                continue
            job_id = str(job["id"])
            if progress is not None:
                progress(f"{job_id}: "
                         f"{job.get('scenario') or 'inline spec'}")
            hits0, miss0 = executor.cache_hits, executor.cache_misses
            try:
                result = run_job(job, executor, out_dir=out_dir)
            except SweepKilled:
                raise  # fault injection: die with the job still running
            except Exception as exc:  # noqa: BLE001 - job isolation
                queue.fail(job_id, f"{type(exc).__name__}: {exc}")
                failed += 1
                if metrics is not None:
                    metrics.counter("farm_jobs_failed_total")
                idle_since = time.monotonic()
                continue
            result["store_hits"] = executor.cache_hits - hits0
            result["store_misses"] = executor.cache_misses - miss0
            queue.complete(job_id, result)
            served += 1
            idle_since = time.monotonic()
            if metrics is not None:
                metrics.counter("farm_jobs_total")
                metrics.counter("farm_points_executed_total",
                                result["store_misses"])
                metrics.counter("cache_hits_total", result["store_hits"])
                metrics.counter("cache_misses_total",
                                result["store_misses"])
                metrics.gauge("farm_queue_depth", queue.depth())
            if progress is not None:
                progress(f"{job_id}: done "
                         f"({result['store_hits']} store hits, "
                         f"{result['store_misses']} executed)")
    finally:
        if pool is not None:
            pool.close()
        if metrics is not None and metrics.timed:
            for entry in executor.timings:
                metrics.add_time("worker_busy_seconds",
                                 float(entry["elapsed"]))
    return {"served": served, "failed": failed,
            "store_hits": executor.cache_hits,
            "store_misses": executor.cache_misses,
            "timings": executor.timings}


def farm_status(queue_root: str,
                cache_dir: Optional[str] = None) -> Dict[str, object]:
    """Queue counts, per-job lines and (optionally) store statistics —
    the data behind ``repro farm status``."""
    queue = JobQueue(queue_root)
    status: Dict[str, object] = {"counts": queue.counts()}
    jobs: List[Dict[str, object]] = []
    from .jobs import JOB_STATES

    for state in JOB_STATES:
        for job in queue.jobs(state):
            jobs.append({
                "job": job.get("id"),
                "state": state,
                "scenario": job.get("scenario")
                or (job.get("spec") or {}).get("name", "inline"),
                "detail": (job.get("error")
                           or (job.get("result") or {}).get("scenario", "")),
            })
    status["jobs"] = jobs
    if cache_dir is not None:
        from ..parallel import CACHE_VERSION
        from .store import ResultStore

        status["store"] = ResultStore(cache_dir, CACHE_VERSION).stats()
    return status
