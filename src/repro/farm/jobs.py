"""File-based job queue for the experiment farm (``repro serve``).

Jobs are single JSON files moved atomically between four state
directories under one queue root::

    <root>/queue/    submitted, waiting for a server
    <root>/running/  claimed by a live server
    <root>/done/     completed (file gains a ``result`` block)
    <root>/failed/   raised (file gains an ``error`` string)

``os.rename`` within one filesystem is atomic, so any number of
``repro submit`` producers and ``repro serve`` consumers can share a
queue root without locks: a job is claimed by whoever wins the rename,
and a lost race simply moves on to the next file.  Job ids are ordered
(``job-000001-…``), so service order is deterministic FIFO.

A server that dies mid-job leaves its file in ``running/``;
:meth:`JobQueue.requeue_stale` (called by every server on startup)
moves such orphans back to ``queue/``, which — combined with the
result store's incremental sweeps — is what makes a killed study
resumable: the re-run job skips every point the dead server already
published.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, List, Optional

__all__ = ["JobQueue", "JOB_STATES"]

#: Queue states, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed")

_STATE_DIRS = {"queued": "queue", "running": "running",
               "done": "done", "failed": "failed"}
_ID_RE = re.compile(r"^job-(\d+)$")


class JobQueue:
    """A shared job queue rooted at ``root`` (directories created on
    demand)."""

    def __init__(self, root: str):
        self.root = root
        for d in _STATE_DIRS.values():
            os.makedirs(os.path.join(root, d), exist_ok=True)

    def _dir(self, state: str) -> str:
        return os.path.join(self.root, _STATE_DIRS[state])

    def _path(self, state: str, job_id: str) -> str:
        return os.path.join(self._dir(state), f"{job_id}.json")

    # -- producer ------------------------------------------------------------

    def submit(self, job: Dict[str, object]) -> str:
        """Enqueue ``job`` (a JSON-serializable dict); returns its id.

        Ids are sequential across every state directory, and the
        exclusive-create publish makes concurrent submitters collision
        safe (the loser retries with the next number).
        """
        seq = self._next_seq()
        while True:
            job_id = f"job-{seq:06d}"
            path = self._path("queued", job_id)
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                seq += 1
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump({"id": job_id, **job}, fh, indent=2,
                          sort_keys=True)
                fh.write("\n")
            return job_id

    def _next_seq(self) -> int:
        top = 0
        for state in JOB_STATES:
            try:
                names = os.listdir(self._dir(state))
            except OSError:
                continue
            for name in names:
                m = _ID_RE.match(name[: -len(".json")]
                                 if name.endswith(".json") else name)
                if m:
                    top = max(top, int(m.group(1)))
        return top + 1

    # -- consumer ------------------------------------------------------------

    def claim_next(self) -> Optional[Dict[str, object]]:
        """Atomically claim the oldest queued job (FIFO by id); returns
        the job dict or ``None`` when the queue is empty."""
        while True:
            try:
                names = sorted(os.listdir(self._dir("queued")))
            except OSError:
                return None
            names = [n for n in names if n.endswith(".json")]
            if not names:
                return None
            job_id = names[0][: -len(".json")]
            src = self._path("queued", job_id)
            dst = self._path("running", job_id)
            try:
                os.rename(src, dst)
            except OSError:
                continue  # lost the claim race; try the next file
            job = self._read(dst)
            if job is not None:
                return job

    def _read(self, path: str) -> Optional[Dict[str, object]]:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                job = json.load(fh)
        except (OSError, ValueError):
            return None
        return job if isinstance(job, dict) else None

    def _finish(self, job_id: str, state: str,
                extra: Dict[str, object]) -> None:
        src = self._path("running", job_id)
        job = self._read(src) or {"id": job_id}
        job.update(extra)
        dst = self._path(state, job_id)
        with open(dst, "w", encoding="utf-8") as fh:
            json.dump(job, fh, indent=2, sort_keys=True)
            fh.write("\n")
        try:
            os.unlink(src)
        except OSError:
            pass

    def complete(self, job_id: str, result: Dict[str, object]) -> None:
        """Move a running job to ``done/`` with its result block."""
        self._finish(job_id, "done", {"status": "done", "result": result})

    def fail(self, job_id: str, error: str) -> None:
        """Move a running job to ``failed/`` with the error string."""
        self._finish(job_id, "failed", {"status": "failed", "error": error})

    def requeue_stale(self) -> List[str]:
        """Move every ``running/`` orphan back to ``queue/`` (server
        startup recovery); returns the requeued ids."""
        requeued: List[str] = []
        try:
            names = sorted(os.listdir(self._dir("running")))
        except OSError:
            return requeued
        for name in names:
            if not name.endswith(".json"):
                continue
            job_id = name[: -len(".json")]
            try:
                os.rename(self._path("running", job_id),
                          self._path("queued", job_id))
                requeued.append(job_id)
            except OSError:
                pass
        return requeued

    # -- introspection -------------------------------------------------------

    def depth(self) -> int:
        """Jobs currently waiting in ``queue/``."""
        return len(self.jobs("queued"))

    def jobs(self, state: str) -> List[Dict[str, object]]:
        """Every job dict in ``state``, ordered by id."""
        out: List[Dict[str, object]] = []
        try:
            names = sorted(os.listdir(self._dir(state)))
        except OSError:
            return out
        for name in names:
            if name.endswith(".json"):
                job = self._read(os.path.join(self._dir(state), name))
                if job is not None:
                    out.append(job)
        return out

    def counts(self) -> Dict[str, int]:
        """Job counts per state, in lifecycle order."""
        return {state: len(self.jobs(state)) for state in JOB_STATES}
