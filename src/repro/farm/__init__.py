"""Experiment farm: shared result store, persistent workers, job queue.

The farm is the *service* layer over the sweep substrate:

* :class:`~repro.farm.store.ResultStore` — content-addressed, versioned,
  concurrent-writer-safe payload store (the sweep cache, shared).
* :class:`~repro.farm.pool.PersistentPool` — worker pool spawned once
  and reused across every ``run()`` call.
* :class:`~repro.farm.jobs.JobQueue` — file-based job queue behind
  ``repro submit`` / ``repro serve``.
* :mod:`~repro.farm.service` — the serve loop and job execution.

Exports resolve lazily (PEP 562): :mod:`repro.parallel` imports
:mod:`~repro.farm.store` while :mod:`~repro.farm.service` imports the
scenario runner (which imports :mod:`repro.parallel` back) — eager
re-exports here would close that cycle.
"""

from __future__ import annotations

__all__ = [
    "ResultStore",
    "PersistentPool",
    "JobQueue",
    "JOB_STATES",
    "build_job",
    "run_job",
    "serve",
    "farm_status",
]

_EXPORTS = {
    "ResultStore": "store",
    "PersistentPool": "pool",
    "JobQueue": "jobs",
    "JOB_STATES": "jobs",
    "build_job": "service",
    "run_job": "service",
    "serve": "service",
    "farm_status": "service",
}


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module}", __name__), name)


def __dir__():
    return sorted(set(globals()) | set(__all__))
