"""Persistent worker pool: spawn once, reuse across every ``run()`` call.

A ``multiprocessing.Pool`` costs a fork/spawn per worker plus importing
the package in each child — tens to hundreds of milliseconds that the
pre-farm :class:`~repro.parallel.SweepExecutor` paid on **every**
``run()`` call.  :class:`PersistentPool` hoists that cost out of the
loop: the pool is created lazily on first dispatch and then reused by
every subsequent call (scenario runs, replication batches, farm jobs)
until :meth:`close`.  ``benchmarks/bench_farm.py`` pins the amortized
spawn overhead across 10 consecutive runs to <= 5%.

The pool carries no result semantics of its own — it only hands out
``imap_unordered`` streams.  Determinism is entirely the executor's
business (results are keyed by point index and re-assembled in point
order), which is what makes unordered streaming safe: completions are
consumed the moment any worker finishes, instead of barriering on the
submission order the way ``imap`` does.
"""

from __future__ import annotations

from multiprocessing import get_context
from typing import Callable, Iterable, Iterator, Optional

__all__ = ["PersistentPool"]


class PersistentPool:
    """A lazily created, reusable ``multiprocessing`` pool.

    Parameters
    ----------
    workers:
        Worker process count (floored at 1).
    context:
        Optional ``multiprocessing`` context (defaults to the
        platform's default, matching the pre-farm executor).

    Use as a context manager, or call :meth:`close` explicitly; an
    unclosed pool is torn down with the interpreter (daemonic workers),
    so a crashed study never leaves orphan processes.
    """

    def __init__(self, workers: int, context=None):
        self.workers = max(1, int(workers))
        self._ctx = context if context is not None else get_context()
        self._pool = None
        #: Dispatch calls served since creation (spawn amortization
        #: denominator; observability only).
        self.runs_served = 0

    @property
    def alive(self) -> bool:
        """True once the underlying pool has been spawned."""
        return self._pool is not None

    def _ensure(self):
        if self._pool is None:
            self._pool = self._ctx.Pool(processes=self.workers)
        return self._pool

    def warm(self) -> "PersistentPool":
        """Spawn the workers now (optional; dispatch does it lazily)."""
        self._ensure()
        return self

    def imap_unordered(self, func: Callable, items: Iterable,
                       chunksize: int = 1) -> Iterator:
        """Stream ``func`` over ``items``, yielding completions as they
        finish (not in submission order)."""
        pool = self._ensure()
        self.runs_served += 1
        return pool.imap_unordered(func, items, chunksize=chunksize)

    def close(self) -> None:
        """Terminate the workers (idempotent); the next dispatch — if
        any — spawns a fresh pool."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> Optional[bool]:
        self.close()
        return None
