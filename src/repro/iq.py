"""The IQ (input-queued, single-output) model of Section 1.2.

The IQ model — m input queues of capacity B feeding one output port —
is the classical multi-queue buffer-management setting.  Both switch
models of the paper generalize it: *"the CIOQ model reduces to the IQ
model if the speedup is 1 and only one input port is in use"* and, per
the conclusion, *"when applied on the IQ model (i.e., N x 1 switches
with speedup 1), our algorithms GM and PG become the same algorithms
given by [Azar-Richter '05] and [Azar-Richter '04 / TLH]"*.

This module provides the reduction explicitly:

* :func:`iq_config` — an m-queue IQ instance as an ``m x 1`` CIOQ switch
  (speedup 1), so every engine/OPT/analysis tool applies unchanged;
* :func:`iq_trace` — packets specified as (queue, value, arrival);
* known lower bounds from the literature survey (Section 1.2) as data,
  so experiments can print measured ratios next to them:
  2 − 1/m for deterministic algorithms [Azar-Richter], e/(e−1) for
  randomized [Bienkowski], 2 − 1/B for greedy policies
  [Albers-Schmidt], and the asymptotic lower bounds 2 (GM) / 3 (PG) for
  the specific algorithms, quoted in the paper's conclusion.

Experiment T11 (``benchmarks/bench_t11_iq_model.py``) uses these to
measure how closely the adaptive adversaries approach the known IQ
lower bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from .switch.config import SwitchConfig
from .switch.packet import Packet
from .traffic.trace import Trace


def iq_config(m: int, b: int) -> SwitchConfig:
    """An IQ instance: m input queues of capacity ``b``, one output.

    Modelled as an ``m x 1`` CIOQ switch with speedup 1.  Each input
    port has exactly one (relevant) VOQ, so "queue i" is VOQ (i, 0);
    the single output queue plays the role of the IQ model's output
    link buffer (use ``b_out=1`` for the strict IQ reduction, where the
    transferred packet leaves immediately in the same slot).
    """
    if m < 1:
        raise ValueError(f"need at least one queue, got {m}")
    return SwitchConfig(n_in=m, n_out=1, speedup=1, b_in=b, b_out=1)


def iq_trace(
    arrivals: Iterable[Tuple[int, float, int]],
    m: int,
    name: str = "iq-trace",
) -> Trace:
    """Build an IQ trace from (queue, value, arrival_slot) triples."""
    packets: List[Packet] = []
    for pid, (queue, value, slot) in enumerate(arrivals):
        if not 0 <= queue < m:
            raise ValueError(f"queue {queue} out of range [0, {m})")
        packets.append(Packet(pid, value, slot, queue, 0))
    return Trace(packets, m, 1, name=name)


@dataclass(frozen=True)
class IQLowerBound:
    """A known lower bound from the Section 1.2 survey."""

    name: str
    applies_to: str
    value: float
    source: str


def known_lower_bounds(m: int, b: int) -> List[IQLowerBound]:
    """The IQ-model lower bounds cited in Section 1.2, instantiated.

    All of these carry over to the CIOQ and buffered crossbar models
    (the paper's observation); they calibrate how much of the gap to
    the upper bounds our adversarial instances close.
    """
    e = math.e
    return [
        IQLowerBound(
            name="deterministic",
            applies_to="any deterministic policy",
            value=2.0 - 1.0 / m,
            source="Azar & Richter '05 [6]",
        ),
        IQLowerBound(
            name="randomized",
            applies_to="any (even randomized) policy",
            value=e / (e - 1.0),
            source="Bienkowski '14 [8]",
        ),
        IQLowerBound(
            name="greedy",
            applies_to="any greedy policy",
            value=2.0 - 1.0 / b,
            source="Albers & Schmidt '06 [3]",
        ),
        IQLowerBound(
            name="GM-asymptotic",
            applies_to="GM on the IQ model (paper conclusion)",
            value=2.0,
            source="Azar & Richter '05 [6] via Section 4",
        ),
        IQLowerBound(
            name="PG-asymptotic",
            applies_to="PG on the IQ model (paper conclusion)",
            value=3.0,
            source="Azar & Richter '04 (TLH) [5] via Section 4",
        ),
    ]


def tlh_equivalence_note() -> str:
    """The conclusion's equivalence claim, for reports."""
    return (
        "On N x 1 switches with speedup 1, GM coincides with the greedy "
        "policy of Azar & Richter [6] and PG with the Transmit Largest "
        "Head (TLH) family [5]; their known asymptotic lower bounds are "
        "2 and 3 respectively (paper, Section 4)."
    )
