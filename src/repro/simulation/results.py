"""Simulation result accounting.

A :class:`SimulationResult` records everything the experiments need from
one policy run: the benefit (total transmitted value — the objective of
Section 1.3), loss breakdowns (rejections and the three preemption
sites), conservation data, per-port statistics, and optionally the full
schedule log used by the proof-machinery replay in
:mod:`repro.theory.shadow`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..switch.config import SwitchConfig
from ..switch.packet import Packet


@dataclass
class TransferEvent:
    """One fabric transfer: packet pid moved i -> j in cycle (slot, s).

    For crossbar runs ``stage`` distinguishes the input subphase ("in",
    VOQ -> crosspoint) from the output subphase ("out", crosspoint ->
    output queue); CIOQ transfers use stage "cioq".
    """

    slot: int
    cycle: int
    src: int
    dst: int
    pid: int
    value: float
    stage: str = "cioq"
    preempted_pid: Optional[int] = None


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    policy_name: str
    config: SwitchConfig
    n_arrival_slots: int
    horizon: int

    # Benefit (the maximization objective).
    benefit: float = 0.0
    n_sent: int = 0

    # Arrival accounting.
    n_arrived: int = 0
    value_arrived: float = 0.0
    n_accepted: int = 0
    value_accepted: float = 0.0
    n_rejected: int = 0
    value_rejected: float = 0.0

    # Preemption accounting by site.
    n_preempted_voq: int = 0
    value_preempted_voq: float = 0.0
    n_preempted_cross: int = 0
    value_preempted_cross: float = 0.0
    n_preempted_out: int = 0
    value_preempted_out: float = 0.0

    # Packets still buffered when the run ended (horizon exhausted).
    n_residual: int = 0
    value_residual: float = 0.0

    # Per-output-port transmissions.
    sent_per_output: Dict[int, int] = field(default_factory=dict)
    value_per_output: Dict[int, float] = field(default_factory=dict)

    # Optional logs (populated when record=True).
    sent_pids: List[int] = field(default_factory=list)
    schedule_log: List[TransferEvent] = field(default_factory=list)
    transmit_log: List[Tuple[int, int, int]] = field(default_factory=list)
    # transmit_log entries: (slot, output_port, pid)

    # Optional per-slot occupancy trace (populated when
    # trace_occupancy=True).  Schema — one 4-tuple per executed slot,
    # recorded at end of slot (after the transmission phase):
    #
    #   (slot, voq_total, cross_total, out_total)
    #
    # where voq_total sums all VOQ lengths, cross_total sums all
    # crosspoint-queue lengths, and out_total sums all output-queue
    # lengths.  Both switch models emit the same schema (via
    # ``switch.occupancy_totals()`` in the shared kernel); the CIOQ
    # model has no crosspoint buffers, so its cross_total is always 0.
    occupancy: List[Tuple[int, int, int, int]] = field(default_factory=list)

    @property
    def n_preempted(self) -> int:
        return self.n_preempted_voq + self.n_preempted_cross + self.n_preempted_out

    @property
    def value_preempted(self) -> float:
        return (
            self.value_preempted_voq
            + self.value_preempted_cross
            + self.value_preempted_out
        )

    @property
    def throughput(self) -> float:
        """Fraction of arrived packets that were transmitted."""
        return self.n_sent / self.n_arrived if self.n_arrived else 0.0

    @property
    def value_throughput(self) -> float:
        """Fraction of arrived value that was transmitted."""
        return self.benefit / self.value_arrived if self.value_arrived else 0.0

    def check_conservation(self) -> None:
        """Assert flow conservation of the accounting.

        arrived == accepted + rejected, and
        accepted == sent + preempted + residual (counts and values).
        """
        assert self.n_arrived == self.n_accepted + self.n_rejected, (
            f"arrival conservation violated: {self.n_arrived} != "
            f"{self.n_accepted} + {self.n_rejected}"
        )
        assert self.n_accepted == self.n_sent + self.n_preempted + self.n_residual, (
            f"buffer conservation violated: {self.n_accepted} != "
            f"{self.n_sent} + {self.n_preempted} + {self.n_residual}"
        )
        assert abs(
            self.value_arrived - self.value_accepted - self.value_rejected
        ) < 1e-6
        assert abs(
            self.value_accepted
            - self.benefit
            - self.value_preempted
            - self.value_residual
        ) < 1e-6

    def record_sent(self, slot: int, j: int, p: Packet, record: bool) -> None:
        self.benefit += p.value
        self.n_sent += 1
        self.sent_per_output[j] = self.sent_per_output.get(j, 0) + 1
        self.value_per_output[j] = self.value_per_output.get(j, 0.0) + p.value
        if record:
            self.sent_pids.append(p.pid)
            self.transmit_log.append((slot, j, p.pid))

    def delays(self, trace) -> Dict[int, int]:
        """Per-packet delay (transmit slot - arrival slot) in slots.

        Requires a run with ``record=True`` (the transmit log) and the
        trace the run consumed.  Delay 0 means same-slot cut-through
        (arrival, transfer and transmission within one slot).
        """
        if not self.transmit_log and self.n_sent:
            raise ValueError("delays() needs a run recorded with record=True")
        arrival_of = {p.pid: p.arrival for p in trace.packets}
        return {
            pid: slot - arrival_of[pid]
            for slot, _j, pid in self.transmit_log
        }

    def delay_stats(self, trace) -> Dict[str, float]:
        """Mean / median / p99 / max delivery delay in slots."""
        delays = sorted(self.delays(trace).values())
        if not delays:
            return {"n": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}

        def pct(q: float) -> float:
            idx = min(len(delays) - 1, int(q * (len(delays) - 1) + 0.5))
            return float(delays[idx])

        return {
            "n": len(delays),
            "mean": sum(delays) / len(delays),
            "p50": pct(0.50),
            "p99": pct(0.99),
            "max": float(delays[-1]),
        }

    def as_payload(self) -> Dict[str, object]:
        """Plain JSON-serializable record of this run's accounting.

        The schema the sweep/scenario substrate ships across process
        boundaries and caches on disk (see
        :func:`repro.parallel.run_sweep_point`); scenario ``metrics``
        select among these fields.
        """
        return {
            "policy": self.policy_name,
            "benefit": self.benefit,
            "n_sent": self.n_sent,
            "n_arrived": self.n_arrived,
            "n_accepted": self.n_accepted,
            "n_rejected": self.n_rejected,
            "n_preempted": self.n_preempted,
            "n_residual": self.n_residual,
            "value_arrived": self.value_arrived,
        }

    def summary(self) -> Dict[str, object]:
        return {
            "policy": self.policy_name,
            "benefit": round(self.benefit, 6),
            "sent": self.n_sent,
            "arrived": self.n_arrived,
            "rejected": self.n_rejected,
            "preempted": self.n_preempted,
            "residual": self.n_residual,
            "throughput": round(self.throughput, 4),
            "value_throughput": round(self.value_throughput, 4),
            "horizon": self.horizon,
        }
