"""Backend registry for the slot-loop engine.

The engine entry points (:func:`repro.simulation.engine.run_cioq` and
friends) accept a ``backend`` argument naming one of three execution
strategies for the arrival/schedule/transmit slot loop:

``reference``
    The pure-Python object-per-packet kernel
    (:mod:`repro.simulation.kernel`).  It has no third-party
    dependencies — importing and running it never requires numpy — and
    it is the semantic ground truth every other backend is pinned to.

``fast``
    The vectorized numpy kernel (:mod:`repro.simulation.fastpath`).
    It batches queue state across ports *and* across whole traces
    (seed ladders), and is required to be **bit-identical** to the
    reference backend on every observable ``SimulationResult`` field.
    Requesting it raises :class:`BackendUnavailable` when numpy is not
    installed and :class:`BackendUnsupported` for features it does not
    implement (streaming sources, event recording, invariant checking,
    matching-stats collection, or policy classes outside its table).

``auto``
    Try ``fast``; on :class:`BackendUnavailable` or
    :class:`BackendUnsupported` fall back to ``reference`` silently.
    This is the right default for sweeps that mix batchable policy
    points with exotic ones.  ``auto`` also applies the
    :data:`AUTO_CROSSOVER` size heuristic: for policy classes whose
    vectorized kernel only wins above a port-count crossover, small
    switches run on the reference kernel directly (``fast`` never
    applies the heuristic — an explicit request is honored as-is).

Because the two backends are interchangeable by contract, backend
choice is deliberately *excluded* from sweep cache keys: a cached
payload is valid regardless of which backend produced it.  The
differential test matrix in ``tests/test_backend_equivalence.py`` is
what makes that contract safe.
"""

from __future__ import annotations

import importlib.util
from typing import Tuple

#: Every recognised backend name, in documentation order.
BACKENDS: Tuple[str, ...] = ("reference", "fast", "auto")

#: The engine-wide default.
DEFAULT_BACKEND = "reference"

#: Port-count crossover per policy class for the ``auto`` backend.
#: Below the crossover (``max(n_in, n_out) < value``) the vectorized
#: kernel's fixed per-slot numpy overhead outweighs its batching win
#: and ``auto`` selects ``reference`` instead: ``BENCH_engine.json``
#: records PG on an 8x8 switch at 0.94x vs reference, while every
#: measured policy wins from 32 ports up.  Entries are keyed by the
#: policy class ``__name__``; absent classes always try ``fast``.
AUTO_CROSSOVER = {"PGPolicy": 16}


def auto_prefers_reference(policy, config) -> bool:
    """True when the ``auto`` backend should skip the fast kernel for
    ``policy`` on a switch of ``config``'s size.

    Purely a scheduling hint — by the bit-identical backend contract it
    never changes a result, only which kernel produces it — so it is
    consulted by the engine dispatchers for ``backend="auto"`` and
    nowhere else.
    """
    crossover = AUTO_CROSSOVER.get(type(policy).__name__)
    if crossover is None:
        return False
    return max(config.n_in, config.n_out) < crossover


class BackendError(RuntimeError):
    """Base class for backend-selection failures."""


class BackendUnavailable(BackendError):
    """The requested backend cannot run in this environment
    (e.g. ``fast`` without numpy installed)."""


class BackendUnsupported(BackendError):
    """The requested backend does not implement the requested feature
    (e.g. ``fast`` with ``record=True`` or an unknown policy class)."""


def validate_backend(name: str) -> str:
    """Return ``name`` if it is a registered backend, else raise
    ``ValueError`` listing the valid choices."""
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {', '.join(BACKENDS)}"
        )
    return name


def numpy_available() -> bool:
    """True when numpy is importable (probed without importing it).

    Treats a broken or explicitly blocked install (``find_spec``
    raising, e.g. ``sys.modules["numpy"] = None`` in tests) the same as
    an absent one.
    """
    try:
        return importlib.util.find_spec("numpy") is not None
    except (ImportError, ValueError):
        return False


def available_backends() -> Tuple[str, ...]:
    """The subset of :data:`BACKENDS` usable in this environment.

    ``reference`` and ``auto`` are always usable (``auto`` degrades to
    ``reference``); ``fast`` requires numpy.
    """
    if numpy_available():
        return BACKENDS
    return tuple(b for b in BACKENDS if b != "fast")


def load_fastpath():
    """Import and return :mod:`repro.simulation.fastpath`.

    Raises :class:`BackendUnavailable` when numpy is missing, so
    callers can distinguish "environment cannot" from "feature not
    implemented" (:class:`BackendUnsupported`).
    """
    if not numpy_available():
        raise BackendUnavailable(
            "the 'fast' backend requires numpy, which is not installed; "
            "use backend='reference' or backend='auto'"
        )
    from . import fastpath

    return fastpath
