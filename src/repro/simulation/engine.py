"""Discrete-time simulation engine.

Implements the slot structure of Section 1.3 exactly: each time slot
consists of an **arrival phase** (arbitrarily many packets, processed in
arrival-event order), a **scheduling phase** of ``speedup`` cycles (each
an admissible schedule: a matching for CIOQ, per-port subphase transfers
for the buffered crossbar), and a **transmission phase** (at most one
packet per output port).

After the last arrival slot the engine keeps running ("drain slots", no
arrivals) until the switch is empty or a safety horizon is reached, so
that the benefit counts every packet the policy can eventually deliver —
matching the competitive framework, where sequences are finite and time
continues afterwards.  The safety horizon ``n_slots + total buffer
capacity`` always suffices: every non-empty switch transmits at least
one packet per slot once no arrivals occur (all paper policies and
baselines are work-conserving at output ports, and buffered packets keep
flowing forward because output queues drain).

The engine validates every policy decision against the switch's
feasibility rules, counts all losses, and asserts conservation at the
end of each run.

The three entry points below are thin wrappers: they build the switch
and the arrival source, then delegate to the shared fast slot loop in
:mod:`repro.simulation.kernel` (see that module for the performance
model).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..scheduling.base import CIOQPolicy, CrossbarPolicy
from ..switch.cioq import CIOQSwitch
from ..switch.config import SwitchConfig
from ..switch.crossbar import CrossbarSwitch
from ..switch.packet import Packet
from ..traffic.trace import Trace
from .backends import (
    DEFAULT_BACKEND,
    BackendUnavailable,
    BackendUnsupported,
    auto_prefers_reference,
    load_fastpath,
    validate_backend,
)
from .kernel import NULL_RECORDER, LogRecorder, run_slot_loop
from .results import SimulationResult

ArrivalSpec = Tuple[int, int, float]


def drain_bound(config: SwitchConfig) -> int:
    """Slots that always suffice to drain a full switch with no arrivals."""
    total_capacity = (
        config.n_in * config.n_out * (config.b_in + config.b_cross)
        + config.n_out * config.b_out
    )
    return total_capacity + 1


def _check_dims(trace: Trace, config: SwitchConfig) -> None:
    if trace.n_in != config.n_in or trace.n_out != config.n_out:
        raise ValueError(
            f"trace is {trace.n_in}x{trace.n_out} but switch is "
            f"{config.n_in}x{config.n_out}"
        )


def _make_result(
    policy, config: SwitchConfig, n_arrival_slots: int, horizon: int
) -> SimulationResult:
    return SimulationResult(
        policy_name=policy.name,
        config=config,
        n_arrival_slots=n_arrival_slots,
        horizon=horizon,
    )


# ---------------------------------------------------------------------------
# CIOQ runs
# ---------------------------------------------------------------------------

def _dispatch_single(
    model: str,
    policy,
    config: SwitchConfig,
    trace: Trace,
    backend: str,
    record: bool,
    max_extra_slots: Optional[int],
    check_invariants: bool,
    trace_occupancy: bool,
    metrics=None,
    metrics_lane: int = 0,
) -> Optional[SimulationResult]:
    """Try the ``fast`` backend for a single run; return ``None`` when
    the caller should take the reference path instead."""
    validate_backend(backend)
    if backend == "reference":
        return None
    if backend == "auto" and auto_prefers_reference(policy, config):
        return None  # below the size crossover the reference kernel wins
    try:
        fastpath = load_fastpath()
        return fastpath.run_single(
            model,
            policy,
            config,
            trace,
            record=record,
            max_extra_slots=max_extra_slots,
            check_invariants=check_invariants,
            trace_occupancy=trace_occupancy,
            metrics=metrics,
            metrics_lane=metrics_lane,
        )
    except (BackendUnavailable, BackendUnsupported):
        if backend == "fast":
            raise
        return None


def run_cioq(
    policy: CIOQPolicy,
    config: SwitchConfig,
    trace: Trace,
    record: bool = False,
    max_extra_slots: Optional[int] = None,
    check_invariants: bool = False,
    trace_occupancy: bool = False,
    backend: str = DEFAULT_BACKEND,
    metrics=None,
    metrics_lane: int = 0,
) -> SimulationResult:
    """Simulate ``policy`` on a CIOQ switch over ``trace``.

    Parameters
    ----------
    record:
        Keep the full schedule/transmission logs (needed by the
        theory-shadow replay and for delay statistics; off by default
        to save memory).
    max_extra_slots:
        Cap on drain slots after the last arrival (default:
        :func:`drain_bound`).
    check_invariants:
        Assert queue-structure invariants after every phase (slow;
        used by tests).
    trace_occupancy:
        Record end-of-slot buffer occupancy totals into
        ``result.occupancy`` (schema documented on
        :class:`~repro.simulation.results.SimulationResult`).
    backend:
        Slot-loop execution backend (see
        :mod:`repro.simulation.backends`): ``reference`` (default),
        ``fast`` (vectorized numpy, bit-identical by contract), or
        ``auto`` (fast when possible, falling back to reference).
    metrics:
        Optional :class:`repro.obs.MetricsRecorder`; ``None`` (default)
        and disabled recorders are payload- and performance-equivalent
        to a metrics-free build (see :mod:`repro.obs`).
    """
    _check_dims(trace, config)
    fast = _dispatch_single(
        "cioq", policy, config, trace, backend,
        record, max_extra_slots, check_invariants, trace_occupancy,
        metrics, metrics_lane,
    )
    if fast is not None:
        return fast
    switch = CIOQSwitch(config)
    policy.reset(switch)
    extra = drain_bound(config) if max_extra_slots is None else max_extra_slots
    horizon = trace.n_slots + extra
    result = _make_result(policy, config, trace.n_slots, horizon)
    return run_slot_loop(
        switch,
        policy,
        trace.arrival_slots().__getitem__,
        trace.n_slots,
        horizon,
        result,
        crossbar=False,
        recorder=LogRecorder(result) if record else NULL_RECORDER,
        check_invariants=check_invariants,
        trace_occupancy=trace_occupancy,
        metrics=metrics,
        metrics_lane=metrics_lane,
    )


def run_cioq_streaming(
    policy: CIOQPolicy,
    config: SwitchConfig,
    source: Callable[[int, CIOQSwitch], Sequence[ArrivalSpec]],
    n_slots: int,
    record: bool = False,
    backend: str = DEFAULT_BACKEND,
    metrics=None,
) -> SimulationResult:
    """Like :func:`run_cioq` but with arrivals produced online by
    ``source(slot, switch)`` — used by adaptive adversaries that inspect
    the online state before choosing the next arrivals.

    ``source`` is consulted for the first ``n_slots`` slots (before the
    arrival phase of each); afterwards the switch drains.  Packet ids
    are assigned in arrival-event order, exactly as
    :class:`~repro.traffic.base.TrafficModel` does for batch traces.

    Streaming sources observe online switch state, so the vectorized
    backend cannot run them: ``backend="fast"`` raises
    :class:`~repro.simulation.backends.BackendUnsupported`, and
    ``backend="auto"`` silently uses the reference kernel.
    """
    validate_backend(backend)
    if backend == "fast":
        raise BackendUnsupported(
            "the fast backend does not support streaming arrival sources"
        )
    switch = CIOQSwitch(config)
    policy.reset(switch)
    horizon = n_slots + drain_bound(config)
    result = _make_result(policy, config, n_slots, horizon)

    pid = 0

    def arrivals_for(t: int) -> List[Packet]:
        nonlocal pid
        packets: List[Packet] = []
        for src, dst, value in source(t, switch):
            packets.append(Packet(pid, value, t, src, dst))
            pid += 1
        return packets

    return run_slot_loop(
        switch,
        policy,
        arrivals_for,
        n_slots,
        horizon,
        result,
        crossbar=False,
        recorder=LogRecorder(result) if record else NULL_RECORDER,
        metrics=metrics,
    )


# ---------------------------------------------------------------------------
# Buffered crossbar runs
# ---------------------------------------------------------------------------

def run_crossbar(
    policy: CrossbarPolicy,
    config: SwitchConfig,
    trace: Trace,
    record: bool = False,
    max_extra_slots: Optional[int] = None,
    check_invariants: bool = False,
    trace_occupancy: bool = False,
    backend: str = DEFAULT_BACKEND,
    metrics=None,
    metrics_lane: int = 0,
) -> SimulationResult:
    """Simulate ``policy`` on a buffered crossbar switch over ``trace``.

    Each scheduling cycle runs the input subphase (at most one VOQ ->
    crosspoint transfer per input port) then the output subphase (at
    most one crosspoint -> output transfer per output port), per
    Section 1.3 of the paper.  Accepts the same keyword options as
    :func:`run_cioq`.
    """
    _check_dims(trace, config)
    fast = _dispatch_single(
        "crossbar", policy, config, trace, backend,
        record, max_extra_slots, check_invariants, trace_occupancy,
        metrics, metrics_lane,
    )
    if fast is not None:
        return fast
    switch = CrossbarSwitch(config)
    policy.reset(switch)
    extra = drain_bound(config) if max_extra_slots is None else max_extra_slots
    horizon = trace.n_slots + extra
    result = _make_result(policy, config, trace.n_slots, horizon)
    return run_slot_loop(
        switch,
        policy,
        trace.arrival_slots().__getitem__,
        trace.n_slots,
        horizon,
        result,
        crossbar=True,
        recorder=LogRecorder(result) if record else NULL_RECORDER,
        check_invariants=check_invariants,
        trace_occupancy=trace_occupancy,
        metrics=metrics,
        metrics_lane=metrics_lane,
    )


def run_crossbar_streaming(
    policy: CrossbarPolicy,
    config: SwitchConfig,
    source: Callable[[int, CrossbarSwitch], Sequence[ArrivalSpec]],
    n_slots: int,
    record: bool = False,
    backend: str = DEFAULT_BACKEND,
    metrics=None,
) -> SimulationResult:
    """Like :func:`run_crossbar` but with arrivals produced online by
    ``source(slot, switch)`` — the crossbar counterpart of
    :func:`run_cioq_streaming`, with the identical contract: the source
    is consulted for the first ``n_slots`` slots, packet ids are
    assigned in arrival-event order, ``backend="fast"`` raises
    :class:`~repro.simulation.backends.BackendUnsupported`, and
    ``backend="auto"`` silently uses the reference kernel.

    Besides adaptive adversaries, both streaming entries drive the
    memory-bounded trace-replay path: a
    :class:`~repro.traffic.base.TrafficModel`'s ``arrival_source(seed)``
    plugs in here and produces results byte-identical to running the
    materialized ``generate(n_slots, seed)`` trace.
    """
    validate_backend(backend)
    if backend == "fast":
        raise BackendUnsupported(
            "the fast backend does not support streaming arrival sources"
        )
    switch = CrossbarSwitch(config)
    policy.reset(switch)
    horizon = n_slots + drain_bound(config)
    result = _make_result(policy, config, n_slots, horizon)

    pid = 0

    def arrivals_for(t: int) -> List[Packet]:
        nonlocal pid
        packets: List[Packet] = []
        for src, dst, value in source(t, switch):
            packets.append(Packet(pid, value, t, src, dst))
            pid += 1
        return packets

    return run_slot_loop(
        switch,
        policy,
        arrivals_for,
        n_slots,
        horizon,
        result,
        crossbar=True,
        recorder=LogRecorder(result) if record else NULL_RECORDER,
        metrics=metrics,
    )


# ---------------------------------------------------------------------------
# Batched runs (seed ladders)
# ---------------------------------------------------------------------------

def _run_batch(
    model: str,
    single_runner,
    policy_factory: Callable[[], object],
    config: SwitchConfig,
    traces: Sequence[Trace],
    max_extra_slots: Optional[int],
    trace_occupancy: bool,
    backend: str,
    metrics=None,
) -> List[SimulationResult]:
    validate_backend(backend)
    traces = list(traces)
    if (backend != "reference" and traces
            and not (backend == "auto"
                     and auto_prefers_reference(policy_factory(), config))):
        try:
            fastpath = load_fastpath()
            for trace in traces:
                _check_dims(trace, config)
            return fastpath.run_batch(
                model,
                policy_factory(),
                config,
                traces,
                max_extra_slots=max_extra_slots,
                trace_occupancy=trace_occupancy,
                metrics=metrics,
            )
        except (BackendUnavailable, BackendUnsupported):
            if backend == "fast":
                raise
    # Reference fallback: lane-tag each trace's samples by batch index,
    # matching the fast backend's lane numbering.
    return [
        single_runner(
            policy_factory(),
            config,
            trace,
            max_extra_slots=max_extra_slots,
            trace_occupancy=trace_occupancy,
            metrics=metrics,
            metrics_lane=i,
        )
        for i, trace in enumerate(traces)
    ]


def run_cioq_batch(
    policy_factory: Callable[[], CIOQPolicy],
    config: SwitchConfig,
    traces: Sequence[Trace],
    *,
    max_extra_slots: Optional[int] = None,
    trace_occupancy: bool = False,
    backend: str = DEFAULT_BACKEND,
    metrics=None,
) -> List[SimulationResult]:
    """Run a fresh policy (one per trace, built by ``policy_factory``)
    over every trace, returning results in trace order.

    With ``backend="fast"`` or ``"auto"`` the whole batch executes in
    lockstep inside the vectorized kernel — this is how replicate seed
    ladders amortize the slot loop.  The reference backend runs the
    traces serially; by the bit-identical backend contract both produce
    exactly the same results.
    """
    return _run_batch(
        "cioq", run_cioq, policy_factory, config, traces,
        max_extra_slots, trace_occupancy, backend, metrics,
    )


def run_crossbar_batch(
    policy_factory: Callable[[], CrossbarPolicy],
    config: SwitchConfig,
    traces: Sequence[Trace],
    *,
    max_extra_slots: Optional[int] = None,
    trace_occupancy: bool = False,
    backend: str = DEFAULT_BACKEND,
    metrics=None,
) -> List[SimulationResult]:
    """Crossbar counterpart of :func:`run_cioq_batch`."""
    return _run_batch(
        "crossbar", run_crossbar, policy_factory, config, traces,
        max_extra_slots, trace_occupancy, backend, metrics,
    )
