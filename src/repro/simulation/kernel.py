"""Shared fast slot-loop kernel for both switch models.

:func:`run_slot_loop` is the single simulation loop behind
:func:`~repro.simulation.engine.run_cioq`,
:func:`~repro.simulation.engine.run_crossbar` and
:func:`~repro.simulation.engine.run_cioq_streaming`.  It implements the
slot structure of Section 1.3 — arrival phase, ``speedup`` scheduling
cycles, transmission phase — exactly once, for both the CIOQ and the
buffered crossbar model, instead of the three near-identical loops the
engine previously carried.

The kernel is written for throughput (it dominates every benchmark's
wall-clock):

* **Batched accounting.**  All counters (arrivals, acceptances,
  rejections, the three preemption sites, benefit, per-output totals)
  accumulate in plain local ints/floats and lists and are flushed into
  the :class:`~repro.simulation.results.SimulationResult` once, after
  the loop — no per-packet attribute writes on the result object.
* **No-op recorder.**  Per-transfer/per-transmission logging sits behind
  a recorder object; ``record=False`` runs use the shared
  :data:`NULL_RECORDER` whose ``enabled`` flag short-circuits every
  logging branch, so the default path allocates no log entries at all.
* **O(1) drain detection.**  The kernel tracks the number of buffered
  packets incrementally (accepted − sent − preempted), so the
  "arrivals exhausted and switch empty" termination test is a counter
  comparison instead of a scan over all N² + N queues per slot.
* **Precomputed arrivals.**  Batch runs index
  :meth:`~repro.traffic.trace.Trace.arrival_slots` per-slot arrays
  directly; streaming runs pass a closure.

Validation is unchanged from the seed engine: every policy decision is
still checked against the switch's feasibility rules (full-queue
acceptance, preemption victims, admissible schedules), so a buggy policy
raises :class:`~repro.switch.cioq.ScheduleError` rather than silently
inflating benefit.  The kernel-equivalence test suite pins the kernel's
results to a verbatim snapshot of the seed engine.
"""

from __future__ import annotations

from bisect import bisect_left
from time import perf_counter
from typing import Callable, Sequence

from ..switch.cioq import ScheduleError
from ..switch.packet import Packet
from .results import SimulationResult, TransferEvent

#: A per-slot arrival source: consulted once per slot ``t`` for
#: ``t < n_arrival_slots``; returns the packets arriving in that slot.
ArrivalSource = Callable[[int], Sequence[Packet]]


class NullRecorder:
    """No-op transfer/transmission recorder — the ``record=False`` path.

    The kernel hoists ``enabled`` out of its loops, so with this
    recorder no logging call is ever made; the methods exist only so a
    recorder can be passed unconditionally.
    """

    __slots__ = ()
    enabled = False

    def transfer(self, slot: int, cycle: int, tr, stage: str) -> None:
        """Ignore a fabric transfer."""

    def sent(self, slot: int, port: int, packet: Packet) -> None:
        """Ignore a transmission."""


#: Shared stateless no-op recorder instance.
NULL_RECORDER = NullRecorder()


class LogRecorder:
    """Appends full schedule/transmission logs to a result
    (the ``record=True`` path, needed by the theory-shadow replay and
    for delay statistics)."""

    __slots__ = ("schedule_log", "sent_pids", "transmit_log")
    enabled = True

    def __init__(self, result: SimulationResult):
        self.schedule_log = result.schedule_log
        self.sent_pids = result.sent_pids
        self.transmit_log = result.transmit_log

    def transfer(self, slot: int, cycle: int, tr, stage: str) -> None:
        p = tr.packet
        victim = tr.preempt
        self.schedule_log.append(
            TransferEvent(
                slot=slot,
                cycle=cycle,
                src=tr.src,
                dst=tr.dst,
                pid=p.pid,
                value=p.value,
                stage=stage,
                preempted_pid=victim.pid if victim is not None else None,
            )
        )

    def sent(self, slot: int, port: int, packet: Packet) -> None:
        self.sent_pids.append(packet.pid)
        self.transmit_log.append((slot, port, packet.pid))


def run_slot_loop(
    switch,
    policy,
    arrivals_for: ArrivalSource,
    n_arrival_slots: int,
    horizon: int,
    result: SimulationResult,
    *,
    crossbar: bool,
    recorder=NULL_RECORDER,
    check_invariants: bool = False,
    trace_occupancy: bool = False,
    metrics=None,
    metrics_lane: int = 0,
) -> SimulationResult:
    """Run the shared slot loop and fill ``result``.

    Parameters
    ----------
    switch:
        A fresh :class:`~repro.switch.cioq.CIOQSwitch` or
        :class:`~repro.switch.crossbar.CrossbarSwitch` (matching
        ``crossbar``); ``policy.reset(switch)`` must already have run.
    arrivals_for:
        Consulted once per slot ``t < n_arrival_slots`` before the
        scheduling phase; afterwards the switch drains.
    horizon:
        Hard slot cap; the loop stops earlier as soon as arrivals are
        exhausted and the switch is empty.
    recorder:
        :data:`NULL_RECORDER` or a :class:`LogRecorder` bound to
        ``result``.
    metrics:
        Optional :class:`repro.obs.MetricsRecorder`.  The enabled guard
        is evaluated **once here**, before the loop: with metrics off
        (``None`` or a disabled recorder) the loop body pays only local
        boolean short-circuits — no method calls, no allocation — so
        payloads and performance are identical to a metrics-free build.
        With metrics on, every ``every_k``-th slot emits one
        ``slot_sample`` (queue occupancy, matching size, cumulative
        arrival/drop/preemption counters) and run totals are flushed
        after the loop; ``timed`` recorders additionally accumulate
        per-phase wall-times (quarantined, non-deterministic).
    metrics_lane:
        Lane tag attached to every sample (batch runs tag each trace's
        lane; single runs use 0).
    """
    config = switch.config
    voq = switch.voq
    speedup = config.speedup
    recording = recorder.enabled

    # Metrics guard: resolved once per run, never per slot.
    m = metrics if (metrics is not None and metrics.enabled) else None
    every = m.every_k if m is not None else 0
    sampling = every > 0
    timed = m is not None and m.timed
    slot_sample = m.slot_sample if sampling else None
    t_arrival = t_schedule = t_transmit = 0.0
    sent_before = 0
    ph0 = 0.0
    run0 = perf_counter() if timed else 0.0

    # Hot-path accounting: plain locals, flushed into `result` after the
    # loop.  `buffered` tracks accepted − sent − preempted, which equals
    # the number of packets resident in the switch (conservation), so
    # drain termination is O(1).
    n_arrived = 0
    value_arrived = 0.0
    n_accepted = 0
    value_accepted = 0.0
    n_rejected = 0
    value_rejected = 0.0
    n_pre_voq = 0
    v_pre_voq = 0.0
    n_pre_cross = 0
    v_pre_cross = 0.0
    n_pre_out = 0
    v_pre_out = 0.0
    benefit = 0.0
    n_sent = 0
    sent_per_output = [0] * config.n_out
    value_per_output = [0.0] * config.n_out
    buffered = 0

    on_arrival = policy.on_arrival
    select_transmissions = policy.select_transmissions
    transmit = switch.transmit
    if crossbar:
        input_subphase = policy.input_subphase
        output_subphase = policy.output_subphase
        apply_input = switch.apply_input_subphase
        apply_output = switch.apply_output_subphase
    else:
        schedule = policy.schedule
        apply_transfers = switch.apply_transfers

    t = -1  # keeps the post-loop metrics flush safe when horizon == 0
    for t in range(horizon):
        sample_slot = sampling and t % every == 0
        if sample_slot:
            sent_before = n_sent
        # -- arrival phase (events processed in arrival order) ----------
        if t < n_arrival_slots:
            if timed:
                ph0 = perf_counter()
            for p in arrivals_for(t):
                pv = p.value
                n_arrived += 1
                value_arrived += pv
                decision = on_arrival(switch, p)
                if not decision.accept:
                    n_rejected += 1
                    value_rejected += pv
                    continue
                q = voq[p.src][p.dst]
                keys = q._keys
                items = q._items
                victim = decision.preempt
                if victim is not None:
                    vidx = bisect_left(keys, victim._key)
                    if vidx >= len(items) or items[vidx].pid != victim.pid:
                        raise ScheduleError(
                            f"arrival preemption victim {victim.pid} not in "
                            f"VOQ ({p.src},{p.dst})"
                        )
                    del keys[vidx]
                    del items[vidx]
                    n_pre_voq += 1
                    v_pre_voq += victim.value
                    buffered -= 1
                if len(items) >= q.capacity:
                    raise ScheduleError(
                        f"policy accepted packet {p.pid} into full VOQ "
                        f"({p.src},{p.dst}) without naming a preemption victim"
                    )
                key = p._key
                idx = bisect_left(keys, key)
                keys.insert(idx, key)
                items.insert(idx, p)
                n_accepted += 1
                value_accepted += pv
                buffered += 1
            if timed:
                t_arrival += perf_counter() - ph0
            if check_invariants:
                switch.check_invariants()

        # -- scheduling phase: `speedup` admissible cycles ---------------
        if timed:
            ph0 = perf_counter()
        if crossbar:
            for s in range(speedup):
                transfers = input_subphase(switch, t, s)
                if transfers:
                    for tr in transfers:
                        victim = tr.preempt
                        if victim is not None:
                            n_pre_cross += 1
                            v_pre_cross += victim.value
                            buffered -= 1
                    if recording:
                        for tr in transfers:
                            recorder.transfer(t, s, tr, "in")
                    apply_input(transfers)
                transfers = output_subphase(switch, t, s)
                if transfers:
                    for tr in transfers:
                        victim = tr.preempt
                        if victim is not None:
                            n_pre_out += 1
                            v_pre_out += victim.value
                            buffered -= 1
                    if recording:
                        for tr in transfers:
                            recorder.transfer(t, s, tr, "out")
                    apply_output(transfers)
                if check_invariants:
                    switch.check_invariants()
        else:
            for s in range(speedup):
                transfers = schedule(switch, t, s)
                if transfers:
                    for tr in transfers:
                        victim = tr.preempt
                        if victim is not None:
                            n_pre_out += 1
                            v_pre_out += victim.value
                            buffered -= 1
                    if recording:
                        for tr in transfers:
                            recorder.transfer(t, s, tr, "cioq")
                    apply_transfers(transfers)
                if check_invariants:
                    switch.check_invariants()
        if timed:
            t_schedule += perf_counter() - ph0

        # -- transmission phase (validated inside switch.transmit) -------
        if timed:
            ph0 = perf_counter()
        selections = select_transmissions(switch)
        if selections:
            for p in transmit(selections):
                pv = p.value
                j = p.dst
                benefit += pv
                n_sent += 1
                buffered -= 1
                sent_per_output[j] += 1
                value_per_output[j] += pv
                if recording:
                    recorder.sent(t, j, p)
        if timed:
            t_transmit += perf_counter() - ph0
        if check_invariants:
            switch.check_invariants()
        if trace_occupancy:
            result.occupancy.append((t,) + switch.occupancy_totals())
        if sample_slot:
            occ = switch.occupancy_totals()
            slot_sample(t, metrics_lane, occ[0], occ[1], occ[2],
                        n_sent - sent_before, n_arrived, n_sent,
                        n_rejected, n_pre_voq + n_pre_cross + n_pre_out)

        if buffered == 0 and t >= n_arrival_slots:
            break

    # -- flush accounting and finalize ----------------------------------
    result.n_arrived = n_arrived
    result.value_arrived = value_arrived
    result.n_accepted = n_accepted
    result.value_accepted = value_accepted
    result.n_rejected = n_rejected
    result.value_rejected = value_rejected
    result.n_preempted_voq = n_pre_voq
    result.value_preempted_voq = v_pre_voq
    result.n_preempted_cross = n_pre_cross
    result.value_preempted_cross = v_pre_cross
    result.n_preempted_out = n_pre_out
    result.value_preempted_out = v_pre_out
    result.benefit = benefit
    result.n_sent = n_sent
    result.sent_per_output = {
        j: c for j, c in enumerate(sent_per_output) if c
    }
    result.value_per_output = {
        j: value_per_output[j] for j in result.sent_per_output
    }

    residual = switch.buffered_packets()
    result.n_residual = len(residual)
    result.value_residual = sum(p.value for p in residual)
    result.check_conservation()

    # -- metrics flush (run-level counters, once per run) ----------------
    if m is not None:
        m.counter("runs_total")
        m.counter("slots_total", t + 1)
        m.counter("packets_arrived_total", n_arrived)
        m.counter("packets_sent_total", n_sent)
        m.counter("packets_rejected_total", n_rejected)
        m.counter("packets_preempted_total",
                  n_pre_voq + n_pre_cross + n_pre_out)
        m.counter("benefit_total", benefit)
        if timed:
            m.add_time("phase_arrival_seconds", t_arrival)
            m.add_time("phase_schedule_seconds", t_schedule)
            m.add_time("phase_transmit_seconds", t_transmit)
            m.add_time("run_seconds", perf_counter() - run0)
    return result
