"""Simulation substrate: the fast slot-loop kernel, the engine entry
points, the backend registry, and result records."""

from .backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    BackendError,
    BackendUnavailable,
    BackendUnsupported,
    available_backends,
    numpy_available,
    validate_backend,
)
from .engine import (
    drain_bound,
    run_cioq,
    run_cioq_batch,
    run_cioq_streaming,
    run_crossbar_streaming,
    run_crossbar,
    run_crossbar_batch,
)
from .kernel import NULL_RECORDER, LogRecorder, NullRecorder, run_slot_loop
from .results import SimulationResult, TransferEvent

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "BackendError",
    "BackendUnavailable",
    "BackendUnsupported",
    "available_backends",
    "numpy_available",
    "validate_backend",
    "drain_bound",
    "run_cioq",
    "run_cioq_batch",
    "run_cioq_streaming",
    "run_crossbar_streaming",
    "run_crossbar",
    "run_crossbar_batch",
    "run_slot_loop",
    "LogRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "SimulationResult",
    "TransferEvent",
]
