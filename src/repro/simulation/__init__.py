"""Simulation substrate: the discrete-time engine and result records."""

from .engine import drain_bound, run_cioq, run_cioq_streaming, run_crossbar
from .results import SimulationResult, TransferEvent

__all__ = [
    "drain_bound",
    "run_cioq",
    "run_cioq_streaming",
    "run_crossbar",
    "SimulationResult",
    "TransferEvent",
]
