"""Simulation substrate: the fast slot-loop kernel, the engine entry
points, and result records."""

from .engine import drain_bound, run_cioq, run_cioq_streaming, run_crossbar
from .kernel import NULL_RECORDER, LogRecorder, NullRecorder, run_slot_loop
from .results import SimulationResult, TransferEvent

__all__ = [
    "drain_bound",
    "run_cioq",
    "run_cioq_streaming",
    "run_crossbar",
    "run_slot_loop",
    "LogRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "SimulationResult",
    "TransferEvent",
]
