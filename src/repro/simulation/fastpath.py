"""Vectorized numpy backend for the slot loop (the ``fast`` backend).

This module re-implements :func:`repro.simulation.kernel.run_slot_loop`
as a *lockstep batch* over many traces ("lanes") at once, with all queue
state held in structure-of-arrays numpy buffers:

* every queue family (VOQs, crosspoint queues, output queues) is a
  ``(value, pid, length)`` triple of arrays with a leading lane axis
  ``S``, entries ``0..len-1`` sorted ascending by the packet key
  ``(value, -pid)`` — head at index ``len-1``, preemption tail at
  index ``0``, exactly mirroring
  :class:`repro.switch.queue.BoundedQueue`;
* arrival admission, queue pushes/pops and transmissions are batched
  numpy operations across lanes and ports, touching only the sparse set
  of non-empty queues, and per-cycle eligibility is packed into per-row
  Python int bitmasks (``np.packbits``) so the sequential matching
  scans cost O(ports), not O(ports^2);
* the genuinely sequential parts — greedy matching scans and the
  order-sensitive float accounting — run as small per-lane Python loops
  over data extracted from the arrays in the reference kernel's exact
  iteration order, so every accumulator receives bit-identical IEEE
  adds in bit-identical order.

The contract is **bit-identical equality** with the reference kernel on
every observable :class:`~repro.simulation.results.SimulationResult`
field; ``tests/test_backend_equivalence.py`` pins it differentially
across the whole scenario registry and a property-based random matrix.

Features the reference kernel has that this backend deliberately does
not (requesting them raises
:class:`~repro.simulation.backends.BackendUnsupported`, and ``auto``
falls back): streaming/adaptive sources, ``record=True`` event logs,
``check_invariants=True``, :class:`MatchingStats` collection, and policy
classes outside :data:`SUPPORTED_POLICIES`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from ..core.cgu import CGUPolicy
from ..core.cpg import CPGPolicy
from ..core.gm import GMPolicy
from ..core.pg import PGPolicy
from ..scheduling.baselines import (
    CrossbarGreedyWeightedPolicy,
    MaxMatchPolicy,
    MaxWeightMatchPolicy,
    RandomMatchPolicy,
    RoundRobinPolicy,
)
from ..scheduling.fifo import FifoCIOQPolicy, FifoCrossbarPolicy
from ..scheduling.matching import hopcroft_karp, max_weight_matching
from ..switch.config import SwitchConfig
from ..traffic.trace import Trace
from .backends import BackendUnsupported
from .engine import drain_bound
from .results import SimulationResult

#: Sentinel pid larger than any real one (head-of-line minimum scans).
_BIG_PID = np.iinfo(np.int64).max

#: Queue lengths and sorted positions fit comfortably in int16
#: (capacities are per-queue buffer sizes); the narrow dtype makes the
#: hot ``len > 0`` / ``len < B`` comparisons several times cheaper.
_LEN_DTYPE = np.int16


# ---------------------------------------------------------------------------
# Structure-of-arrays queue family
# ---------------------------------------------------------------------------

class _QueueFamily:
    """``S x Q`` bounded queues of capacity ``B`` as three arrays.

    ``val[s, q, 0:len[s, q]]`` ascending by ``(value, -pid)``; entries at
    and beyond ``len`` are garbage and must always be masked by ``len``.
    """

    __slots__ = ("val", "pid", "len", "B", "_k")

    def __init__(self, S: int, Q: int, B: int):
        self.val = np.zeros((S, Q, B), dtype=np.float64)
        self.pid = np.zeros((S, Q, B), dtype=np.int64)
        self.len = np.zeros((S, Q), dtype=_LEN_DTYPE)
        self.B = B
        self._k = np.arange(B, dtype=_LEN_DTYPE)

    # All (s, q) selector pairs handed to the mutators below must be
    # unique within one call — the scatter-back would otherwise race.

    def insert(self, s, q, v, p) -> None:
        """Sorted-insert packet ``(v, p)`` into each selected queue."""
        if len(s) == 0:
            return
        rv = self.val[s, q]          # [K, B] gather
        rp = self.pid[s, q]
        ln = self.len[s, q]
        k = self._k
        vc = v[:, None]
        pc = p[:, None]
        valid = k < ln[:, None]
        less = valid & ((rv < vc) | ((rv == vc) & (rp > pc)))
        pos = less.sum(axis=1, dtype=_LEN_DTYPE)[:, None]
        prev_v = np.concatenate([rv[:, :1], rv[:, :-1]], axis=1)
        prev_p = np.concatenate([rp[:, :1], rp[:, :-1]], axis=1)
        above = k > pos
        self.val[s, q] = np.where(k < pos, rv, np.where(above, prev_v, vc))
        self.pid[s, q] = np.where(k < pos, rp, np.where(above, prev_p, pc))
        self.len[s, q] = ln + 1

    def delete_at(self, s, q, pos) -> None:
        """Remove the entry at sorted position ``pos`` from each queue."""
        if len(s) == 0:
            return
        rv = self.val[s, q]
        rp = self.pid[s, q]
        ln = self.len[s, q]
        k = self._k
        posc = np.asarray(pos)[:, None]
        next_v = np.concatenate([rv[:, 1:], rv[:, :1]], axis=1)
        next_p = np.concatenate([rp[:, 1:], rp[:, :1]], axis=1)
        below = k < posc
        self.val[s, q] = np.where(below, rv, next_v)
        self.pid[s, q] = np.where(below, rp, next_p)
        self.len[s, q] = ln - 1

    def pop_heads(self, s, q) -> Tuple[np.ndarray, np.ndarray]:
        """Remove and return the head (max-key) packet of each queue."""
        ln = self.len[s, q] - np.int16(1)
        v = self.val[s, q, ln]
        p = self.pid[s, q, ln]
        self.len[s, q] = ln
        return v, p

    def head_vals_at(self, s, q) -> np.ndarray:
        """Head values of the selected (non-empty) queues."""
        return self.val[s, q, self.len[s, q] - np.int16(1)]

    def heads(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(values, pids, nonempty)`` of every head; empty queues get
        ``-inf`` values (below every real positive value)."""
        ln = self.len
        idx = np.maximum(ln - np.int16(1), np.int16(0))[:, :, None]
        hv = np.take_along_axis(self.val, idx, axis=2)[:, :, 0]
        hp = np.take_along_axis(self.pid, idx, axis=2)[:, :, 0]
        nonempty = ln > 0
        hv = np.where(nonempty, hv, -np.inf)
        return hv, hp, nonempty

    def hols(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(positions, values, pids)`` of every head-of-line (minimum
        pid) packet; empty queues get pid :data:`_BIG_PID`."""
        valid = self._k < self.len[:, :, None]
        pids = np.where(valid, self.pid, _BIG_PID)
        pos = pids.argmin(axis=2)
        hp = pids.min(axis=2)
        hv = np.take_along_axis(self.val, pos[:, :, None], axis=2)[:, :, 0]
        return pos, hv, hp

    def hols_at(self, s, q) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(positions, values, pids)`` of the head-of-line packet of
        each selected (non-empty) queue."""
        rp = self.pid[s, q]                       # [K, B]
        valid = self._k < self.len[s, q][:, None]
        pids = np.where(valid, rp, _BIG_PID)
        pos = pids.argmin(axis=1)
        hp = pids.min(axis=1)
        hv = self.val[s, q, pos]
        return pos, hv, hp


# ---------------------------------------------------------------------------
# Per-trace arrival preprocessing (memoized on the Trace instance)
# ---------------------------------------------------------------------------

class _SlotEvents:
    """One slot's arrivals, decomposed for batched admission.

    ``rounds`` partitions the event indices so that every round touches
    each VOQ cell at most once: event ``k`` lands in round ``r`` when it
    is the ``r``-th arrival into its cell within the slot.  Round ``r``
    decisions therefore see exactly the queue state left by all earlier
    arrivals to the same cell, which is all the sequential admission
    loop of the reference kernel ever observes.
    """

    __slots__ = ("cells", "vals", "pids", "val_list", "rounds")

    def __init__(self, packets, n_out: int):
        cells = [p.src * n_out + p.dst for p in packets]
        self.cells = np.array(cells, dtype=np.int64)
        self.vals = np.array([p.value for p in packets], dtype=np.float64)
        self.pids = np.array([p.pid for p in packets], dtype=np.int64)
        self.val_list = [p.value for p in packets]
        seen: Dict[int, int] = {}
        rounds: List[List[int]] = []
        for k, c in enumerate(cells):
            r = seen.get(c, 0)
            seen[c] = r + 1
            if r == len(rounds):
                rounds.append([])
            rounds[r].append(k)
        self.rounds = [np.array(ridx, dtype=np.int64) for ridx in rounds]


def _prep_trace(trace: Trace, n_out: int) -> List[Optional[_SlotEvents]]:
    cached = getattr(trace, "_fastpath_prep", None)
    if cached is not None and cached[0] == n_out:
        return cached[1]
    slots: List[Optional[_SlotEvents]] = [
        _SlotEvents(packets, n_out) if packets else None
        for packets in trace.arrival_slots()
    ]
    try:
        trace._fastpath_prep = (n_out, slots)
    except AttributeError:  # pragma: no cover - Trace has no __slots__
        pass
    return slots


class _GlobalSlot:
    """One slot's arrivals concatenated lane-major across the batch.

    Safe to precompute for the whole run: a lane with arrivals at slot
    ``t`` has ``t < n_arrival_slots`` and no lane can retire before the
    end of its arrival slots (retirement requires ``t >=
    n_arrival_slots`` or reaching the horizon, which is at least
    ``n_arrival_slots``).
    """

    __slots__ = ("ev_s", "ev_c", "ev_v", "ev_p", "rounds", "lanes", "n")

    def __init__(self, parts):
        # parts: list of (lane, _SlotEvents), lane-index ascending.
        offs = []
        off = 0
        for _lane, se in parts:
            offs.append(off)
            off += len(se.val_list)
        self.n = off
        self.ev_s = np.concatenate([
            np.full(len(se.val_list), lane.idx, dtype=np.int64)
            for lane, se in parts])
        self.ev_c = np.concatenate([se.cells for _l, se in parts])
        self.ev_v = np.concatenate([se.vals for _l, se in parts])
        self.ev_p = np.concatenate([se.pids for _l, se in parts])
        max_r = max(len(se.rounds) for _l, se in parts)
        self.rounds = [
            np.concatenate([
                se.rounds[r] + off
                for (_l, se), off in zip(parts, offs)
                if r < len(se.rounds)
            ])
            for r in range(max_r)
        ]
        self.lanes = [
            (lane, off, se.val_list)
            for (lane, se), off in zip(parts, offs)
        ]


# ---------------------------------------------------------------------------
# Per-trace lane state (Python-scalar accounting, reference order)
# ---------------------------------------------------------------------------

class _Lane:
    __slots__ = (
        "idx", "slots", "n_arr", "horizon", "result", "buffered",
        "n_arrived", "value_arrived", "n_accepted", "value_accepted",
        "n_rejected", "value_rejected", "n_pre_voq", "v_pre_voq",
        "n_pre_cross", "v_pre_cross", "n_pre_out", "v_pre_out",
        "benefit", "n_sent", "sent_po", "val_po",
        "rng", "grant_ptr", "accept_ptr", "slots_exec",
    )

    def __init__(self, idx: int, slots, n_arr: int, horizon: int,
                 result: SimulationResult):
        self.idx = idx
        self.slots = slots
        self.n_arr = n_arr
        self.horizon = horizon
        self.result = result
        self.buffered = 0
        self.n_arrived = 0
        self.value_arrived = 0.0
        self.n_accepted = 0
        self.value_accepted = 0.0
        self.n_rejected = 0
        self.value_rejected = 0.0
        self.n_pre_voq = 0
        self.v_pre_voq = 0.0
        self.n_pre_cross = 0
        self.v_pre_cross = 0.0
        self.n_pre_out = 0
        self.v_pre_out = 0.0
        self.benefit = 0.0
        self.n_sent = 0
        self.sent_po: List[int] = []
        self.val_po: List[float] = []
        self.rng = None
        self.grant_ptr: List[int] = []
        self.accept_ptr: List[int] = []
        self.slots_exec = 0


# ---------------------------------------------------------------------------
# Policy steppers
# ---------------------------------------------------------------------------

class _Stepper:
    """One scheduling-phase implementation; subclasses mirror exactly one
    reference policy class."""

    #: "reject" (drop when the VOQ is full) or "pushout" (preempt the
    #: VOQ tail when strictly less valuable) — the only two arrival
    #: rules across all supported policies.
    arrival = "reject"
    #: "head" (most valuable) or "hol" (earliest pid) transmissions.
    transmit = "head"

    def __init__(self, run: "_BatchRun", proto):
        self.run = run

    def init_lane(self, lane: _Lane) -> None:
        """Install per-lane policy state (pointers, rng)."""

    def cycle(self, t: int, cyc: int) -> None:
        raise NotImplementedError


def _rotated_first(mask: int, offset: int, n: int, full: int) -> int:
    """Index of the first set bit of ``mask`` scanning ``offset,
    offset+1, ..., n-1, 0, ..., offset-1``."""
    if offset:
        mask = ((mask >> offset) | (mask << (n - offset))) & full
    return ((mask & -mask).bit_length() - 1 + offset) % n


def _bits_to_list(mask: int) -> List[int]:
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


class _GMStepper(_Stepper):
    arrival = "reject"

    def __init__(self, run, proto):
        super().__init__(run, proto)
        self.rotate = proto.rotate
        self._orders: Dict[int, Tuple[int, ...]] = {}

    def _order(self, offset: int) -> Tuple[int, ...]:
        cached = self._orders.get(offset)
        if cached is None:
            ni = self.run.NI
            cached = tuple(range(offset, ni)) + tuple(range(offset))
            self._orders[offset] = cached
        return cached

    def cycle(self, t, cyc):
        run = self.run
        ni, nj = run.NI, run.NJ
        offset = (t * run.speedup + cyc) % ni if self.rotate else 0
        order = self._order(offset)
        rowbits = run.voq_rowbits()
        # Starting ``avail`` from the open outputs folds the
        # output-not-full condition of the edge mask into the scan.
        openbits = run.pack_bool_rows(run.out.len < run.B_out)
        ms: List[int] = []
        mq: List[int] = []
        mj: List[int] = []
        for s in run.active_ids:
            avail = openbits[s]
            if not avail:
                continue
            base = s * ni
            for i in order:
                m = rowbits[base + i] & avail
                if m:
                    low = m & -m
                    avail ^= low
                    j = low.bit_length() - 1
                    ms.append(s)
                    mq.append(i * nj + j)
                    mj.append(j)
                    if not avail:
                        break
        run.apply_cioq_head_transfers(ms, mq, mj)


class _MaxMatchStepper(_Stepper):
    arrival = "reject"

    def cycle(self, t, cyc):
        run = self.run
        ni, nj = run.NI, run.NJ
        rowbits = run.voq_rowbits()
        openbits = run.pack_bool_rows(run.out.len < run.B_out)
        ms: List[int] = []
        mq: List[int] = []
        mj: List[int] = []
        for s in run.active_ids:
            ob = openbits[s]
            base = s * ni
            adj = [_bits_to_list(rowbits[base + i] & ob) for i in range(ni)]
            for i, j in hopcroft_karp(ni, nj, adj):
                ms.append(s)
                mq.append(i * nj + j)
                mj.append(j)
        run.apply_cioq_head_transfers(ms, mq, mj)


class _RandomStepper(_Stepper):
    arrival = "reject"

    def __init__(self, run, proto):
        super().__init__(run, proto)
        self.seed = proto.seed

    def init_lane(self, lane):
        lane.rng = np.random.default_rng(self.seed)

    def cycle(self, t, cyc):
        run = self.run
        nj = run.NJ
        mask = run.cioq_edge_mask()
        ss, ii, jj = np.nonzero(mask)
        if ss.size == 0:
            return
        il = ii.tolist()
        jl = jj.tolist()
        bounds = np.searchsorted(ss, run.active_bounds).tolist()
        ms: List[int] = []
        mq: List[int] = []
        mj: List[int] = []
        for pos, s in enumerate(run.active_ids):
            lo, hi = bounds[2 * pos], bounds[2 * pos + 1]
            if lo == hi:
                continue
            order = run.lanes[s].rng.permutation(hi - lo)
            left = 0
            right = 0
            for k in order.tolist():
                i = il[lo + k]
                j = jl[lo + k]
                ib = 1 << i
                jb = 1 << j
                if not (left & ib) and not (right & jb):
                    left |= ib
                    right |= jb
                    ms.append(s)
                    mq.append(i * nj + j)
                    mj.append(j)
        run.apply_cioq_head_transfers(ms, mq, mj)


class _RoundRobinStepper(_Stepper):
    arrival = "reject"

    def init_lane(self, lane):
        lane.grant_ptr = [0] * self.run.NJ
        lane.accept_ptr = [0] * self.run.NI

    def cycle(self, t, cyc):
        run = self.run
        ni, nj = run.NI, run.NJ
        mask = run.cioq_edge_mask()
        colbits = run.pack_bool_rows(
            np.ascontiguousarray(mask.transpose(0, 2, 1)).reshape(-1, ni))
        full_ni = run.full_NI
        ms: List[int] = []
        mq: List[int] = []
        mj: List[int] = []
        for s in run.active_ids:
            lane = run.lanes[s]
            gptr = lane.grant_ptr
            aptr = lane.accept_ptr
            base = s * nj
            grants: List[List[int]] = [[] for _ in range(ni)]
            for j in range(nj):
                m = colbits[base + j]
                if m:
                    i = _rotated_first(m, gptr[j], ni, full_ni)
                    grants[i].append(j)
            for i in range(ni):
                if not grants[i]:
                    continue
                ap = aptr[i]
                best = min(grants[i], key=lambda j: (j - ap) % nj)
                ms.append(s)
                mq.append(i * nj + best)
                mj.append(best)
                aptr[i] = (best + 1) % nj
                gptr[best] = (i + 1) % ni
        run.apply_cioq_head_transfers(ms, mq, mj)


class _PGStepper(_Stepper):
    arrival = "pushout"

    def __init__(self, run, proto):
        super().__init__(run, proto)
        self.beta = proto.beta

    def cycle(self, t, cyc):
        run = self.run
        nj = run.NJ
        ss, cc = run.voq_sparse()
        if ss.size == 0:
            return
        gv = run.voq.head_vals_at(ss, cc)
        full_out = run.out.len >= run.B_out
        tailv = run.out.val[:, :, 0]
        thr = np.where(full_out, self.beta * tailv, 0.0)
        keep = gv > thr[ss, cc % nj]
        if not keep.any():
            return
        ss = ss[keep]
        cc = cc[keep]
        gv = gv[keep]
        # A stable sort by descending value keeps the (lane, i, j)
        # ascending nonzero order among ties — exactly the reference
        # edge sort key (-value, i, j), applied per lane by the scan.
        order = np.argsort(-gv, kind="stable")
        ss = ss[order]
        cc = cc[order]
        ii = cc // nj
        jj = cc - ii * nj
        run.greedy_cioq_preempt(
            ss.tolist(), cc.tolist(), ii.tolist(), jj.tolist(),
            full_out, tailv)


class _MaxWeightStepper(_Stepper):
    arrival = "pushout"

    def __init__(self, run, proto):
        super().__init__(run, proto)
        self.beta = proto.beta

    def cycle(self, t, cyc):
        run = self.run
        nj = run.NJ
        hv, _hp, _ne = run.voq.heads()
        hv3 = hv.reshape(run.S, run.NI, nj)
        full_out = run.out.len >= run.B_out
        tailv = run.out.val[:, :, 0]
        thr = np.where(full_out, self.beta * tailv, 0.0)
        elig = hv3 > thr[:, None, :]
        if not run.all_active:
            elig &= run.active_mask[:, None, None]
        any_edge = elig.any(axis=(1, 2)).tolist()
        weights = np.where(elig, hv3, 0.0)
        fo = full_out.tolist()
        tv = tailv.tolist()
        ms: List[int] = []
        mq: List[int] = []
        mj: List[int] = []
        ps: List[int] = []
        pj: List[int] = []
        for s in run.active_ids:
            if not any_edge[s]:
                continue
            lane = run.lanes[s]
            fo_s = fo[s]
            tv_s = tv[s]
            for i, j, _w in max_weight_matching(weights[s].tolist()):
                if fo_s[j]:
                    lane.n_pre_out += 1
                    lane.v_pre_out += tv_s[j]
                    lane.buffered -= 1
                    ps.append(s)
                    pj.append(j)
                ms.append(s)
                mq.append(i * nj + j)
                mj.append(j)
        run.apply_cioq_head_transfers(ms, mq, mj, pre_s=ps, pre_j=pj)


class _FifoCIOQStepper(_Stepper):
    arrival = "pushout"
    transmit = "hol"

    def cycle(self, t, cyc):
        run = self.run
        nj = run.NJ
        ss, cc = run.voq_sparse()
        if ss.size == 0:
            return
        open_out = (run.out.len < run.B_out)[ss, cc % nj]
        if not open_out.any():
            return
        ss = ss[open_out]
        cc = cc[open_out]
        pos, hv, hp = run.voq.hols_at(ss, cc)
        # Same global stable-sort trick as PG, keyed by the HOL value.
        order = np.argsort(-hv, kind="stable")
        so = ss[order]
        co = cc[order]
        io = co // nj
        jo = co - io * nj
        sl = so.tolist()
        cl = co.tolist()
        il = io.tolist()
        jl = jo.tolist()
        ol = order.tolist()
        left = [0] * run.S
        right = [0] * run.S
        ms: List[int] = []
        mc: List[int] = []
        midx: List[int] = []
        for k, (s, c, i, j) in enumerate(zip(sl, cl, il, jl)):
            ib = 1 << i
            lm = left[s]
            if lm & ib:
                continue
            jb = 1 << j
            rm = right[s]
            if rm & jb:
                continue
            left[s] = lm | ib
            right[s] = rm | jb
            ms.append(s)
            mc.append(c)
            midx.append(ol[k])
        if not ms:
            return
        s_arr = np.array(ms, dtype=np.int64)
        c_arr = np.array(mc, dtype=np.int64)
        sel = np.array(midx, dtype=np.int64)
        run.voq.delete_at(s_arr, c_arr, pos[sel])
        run.out.insert(s_arr, c_arr % nj, hv[sel], hp[sel])


class _CGUStepper(_Stepper):
    arrival = "reject"

    def __init__(self, run, proto):
        super().__init__(run, proto)
        self.rotate = proto.rotate
        ni, nj = run.NI, run.NJ
        # Rolled priority tables: ``_pr_in[off][j] == (j - off) % nj``,
        # so the first index at-or-after the rotation offset is the
        # argmin of the table over the eligible entries.
        self._pr_in = [
            np.roll(np.arange(nj, dtype=np.int16), off) for off in range(nj)
        ]
        self._pr_out = [
            np.roll(np.arange(ni, dtype=np.int16), off) for off in range(ni)
        ]

    def cycle(self, t, cyc):
        run = self.run
        ni, nj = run.NI, run.NJ
        S = run.S
        count = t * run.speedup + cyc
        # Input subphase: first (rotated) j with VOQ non-empty and
        # crosspoint non-full, per input.
        off_in = count % nj if self.rotate else 0
        elig = (run.voq.len > 0) & (run.cross.len < run.B_cross)
        if not run.all_active:
            elig &= run.active_mask[:, None]
        elig3 = elig.reshape(S, ni, nj)
        pr = self._pr_in[off_in]
        masked = np.where(elig3, pr[None, None, :], np.int16(nj))
        am = masked.argmin(axis=2)
        hit = np.take_along_axis(masked, am[:, :, None], axis=2)[:, :, 0] < nj
        ss, ii = np.nonzero(hit)
        if ss.size:
            q_arr = ii * nj + am[ss, ii]
            v, p = run.voq.pop_heads(ss, q_arr)
            run.cross.insert(ss, q_arr, v, p)
        # Output subphase: first (rotated) i with crosspoint non-empty,
        # per non-full output.
        off_out = count % ni if self.rotate else 0
        crossne = run.cross.len > 0
        if not run.all_active:
            crossne &= run.active_mask[:, None]
        elig_out = crossne.reshape(S, ni, nj) & (
            run.out.len < run.B_out)[:, None, :]
        pri = self._pr_out[off_out]
        masked = np.where(elig_out, pri[None, :, None], np.int16(ni))
        am = masked.argmin(axis=1)
        hit = np.take_along_axis(masked, am[:, None, :], axis=1)[:, 0, :] < ni
        ss, jj = np.nonzero(hit)
        if ss.size:
            q_arr = am[ss, jj] * nj + jj
            v, p = run.cross.pop_heads(ss, q_arr)
            run.out.insert(ss, jj, v, p)


class _CPGStepper(_Stepper):
    arrival = "pushout"

    def __init__(self, run, proto):
        super().__init__(run, proto)
        self.beta = proto.beta
        self.alpha = proto.alpha

    def cycle(self, t, cyc):
        run = self.run
        ni, nj = run.NI, run.NJ
        S = run.S
        # -- input subphase: best (value, -pid) eligible VOQ head per i.
        hv, hp, ne = run.voq.heads()
        hv3 = hv.reshape(S, ni, nj)
        hp3 = hp.reshape(S, ni, nj)
        cl = run.cross.len.reshape(S, ni, nj)
        cfull = cl >= run.B_cross
        lcv = run.cross.val[:, :, 0].reshape(S, ni, nj)
        elig = ne.reshape(S, ni, nj) & (
            ~cfull | (hv3 > self.beta * lcv))
        if not run.all_active:
            elig &= run.active_mask[:, None, None]
        bv = np.where(elig, hv3, -np.inf).max(axis=2)
        has = bv > -np.inf
        tie = elig & (hv3 == bv[:, :, None])
        bp = np.where(tie, hp3, _BIG_PID).min(axis=2)
        bj = (tie & (hp3 == bp[:, :, None])).argmax(axis=2)
        ss, ii = np.nonzero(has)
        if ss.size:
            jj = bj[ss, ii]
            cells = ii * nj + jj
            pre = cfull[ss, ii, jj]
            if pre.any():
                vic_v = lcv[ss, ii, jj]
                sl = ss.tolist()
                prel = pre.tolist()
                vicl = vic_v.tolist()
                for k, s in enumerate(sl):
                    if prel[k]:
                        lane = run.lanes[s]
                        lane.n_pre_cross += 1
                        lane.v_pre_cross += vicl[k]
                        lane.buffered -= 1
                v, p = run.voq.pop_heads(ss, cells)
                run.cross.delete_at(ss[pre], cells[pre],
                                    np.zeros(int(pre.sum()),
                                             dtype=_LEN_DTYPE))
                run.cross.insert(ss, cells, v, p)
            else:
                v, p = run.voq.pop_heads(ss, cells)
                run.cross.insert(ss, cells, v, p)
        # -- output subphase: best crosspoint head per j, thresholded
        # admission into the output queue.
        chv, chp, cne = run.cross.heads()
        chv3 = chv.reshape(S, ni, nj)
        chp3 = chp.reshape(S, ni, nj)
        cne3 = cne.reshape(S, ni, nj)
        if not run.all_active:
            cne3 = cne3 & run.active_mask[:, None, None]
        bv = np.where(cne3, chv3, -np.inf).max(axis=1)       # [S, NJ]
        has = bv > -np.inf
        tie = cne3 & (chv3 == bv[:, None, :])
        bp = np.where(tie, chp3, _BIG_PID).min(axis=1)
        bi = (tie & (chp3 == bp[:, None, :])).argmax(axis=1)
        out_full = run.out.len >= run.B_out
        ljv = run.out.val[:, :, 0]
        admit = has & (~out_full | (bv > self.alpha * ljv))
        ss, jj = np.nonzero(admit)
        if ss.size == 0:
            return
        ii = bi[ss, jj]
        cells = ii * nj + jj
        pre = out_full[ss, jj]
        if pre.any():
            vic_v = ljv[ss, jj]
            sl = ss.tolist()
            prel = pre.tolist()
            vicl = vic_v.tolist()
            for k, s in enumerate(sl):
                if prel[k]:
                    lane = run.lanes[s]
                    lane.n_pre_out += 1
                    lane.v_pre_out += vicl[k]
                    lane.buffered -= 1
            v, p = run.cross.pop_heads(ss, cells)
            run.out.delete_at(ss[pre], jj[pre],
                              np.zeros(int(pre.sum()), dtype=_LEN_DTYPE))
            run.out.insert(ss, jj, v, p)
        else:
            v, p = run.cross.pop_heads(ss, cells)
            run.out.insert(ss, jj, v, p)


class _CGWStepper(_Stepper):
    arrival = "reject"

    def cycle(self, t, cyc):
        run = self.run
        ni, nj = run.NI, run.NJ
        S = run.S
        # Input: best (value, -pid) VOQ head among non-full crosspoints.
        hv, hp, ne = run.voq.heads()
        hv3 = hv.reshape(S, ni, nj)
        hp3 = hp.reshape(S, ni, nj)
        cfull = run.cross.len.reshape(S, ni, nj) >= run.B_cross
        elig = ne.reshape(S, ni, nj) & ~cfull
        if not run.all_active:
            elig &= run.active_mask[:, None, None]
        bv = np.where(elig, hv3, -np.inf).max(axis=2)
        has = bv > -np.inf
        tie = elig & (hv3 == bv[:, :, None])
        bp = np.where(tie, hp3, _BIG_PID).min(axis=2)
        bj = (tie & (hp3 == bp[:, :, None])).argmax(axis=2)
        ss, ii = np.nonzero(has)
        if ss.size:
            cells = ii * nj + bj[ss, ii]
            v, p = run.voq.pop_heads(ss, cells)
            run.cross.insert(ss, cells, v, p)
        # Output: best crosspoint head per non-full output.
        chv, chp, cne = run.cross.heads()
        chv3 = chv.reshape(S, ni, nj)
        chp3 = chp.reshape(S, ni, nj)
        cne3 = cne.reshape(S, ni, nj) & (
            run.out.len < run.B_out)[:, None, :]
        if not run.all_active:
            cne3 &= run.active_mask[:, None, None]
        bv = np.where(cne3, chv3, -np.inf).max(axis=1)
        has = bv > -np.inf
        tie = cne3 & (chv3 == bv[:, None, :])
        bp = np.where(tie, chp3, _BIG_PID).min(axis=1)
        bi = (tie & (chp3 == bp[:, None, :])).argmax(axis=1)
        ss, jj = np.nonzero(has)
        if ss.size:
            cells = bi[ss, jj] * nj + jj
            v, p = run.cross.pop_heads(ss, cells)
            run.out.insert(ss, jj, v, p)


class _FifoCrossbarStepper(_Stepper):
    arrival = "pushout"
    transmit = "hol"

    def cycle(self, t, cyc):
        run = self.run
        ni, nj = run.NI, run.NJ
        S = run.S
        # Input: best (hol value, -hol pid) per input among non-full
        # crosspoints.
        pos, hv, hp = run.voq.hols()
        hv3 = hv.reshape(S, ni, nj)
        hp3 = hp.reshape(S, ni, nj)
        ne3 = (run.voq.len > 0).reshape(S, ni, nj)
        cfull = run.cross.len.reshape(S, ni, nj) >= run.B_cross
        elig = ne3 & ~cfull
        if not run.all_active:
            elig &= run.active_mask[:, None, None]
        bv = np.where(elig, hv3, -np.inf).max(axis=2)
        has = bv > -np.inf
        tie = elig & (hv3 == bv[:, :, None])
        bp = np.where(tie, hp3, _BIG_PID).min(axis=2)
        bj = (tie & (hp3 == bp[:, :, None])).argmax(axis=2)
        ss, ii = np.nonzero(has)
        if ss.size:
            cells = ii * nj + bj[ss, ii]
            v = hv[ss, cells]
            p = hp[ss, cells]
            run.voq.delete_at(ss, cells, pos[ss, cells])
            run.cross.insert(ss, cells, v, p)
        # Output: best crosspoint hol per non-full output.
        cpos, chv, chp = run.cross.hols()
        chv3 = chv.reshape(S, ni, nj)
        chp3 = chp.reshape(S, ni, nj)
        cne3 = (run.cross.len > 0).reshape(S, ni, nj) & (
            run.out.len < run.B_out)[:, None, :]
        if not run.all_active:
            cne3 &= run.active_mask[:, None, None]
        bv = np.where(cne3, chv3, -np.inf).max(axis=1)
        has = bv > -np.inf
        tie = cne3 & (chv3 == bv[:, None, :])
        bp = np.where(tie, chp3, _BIG_PID).min(axis=1)
        bi = (tie & (chp3 == bp[:, None, :])).argmax(axis=1)
        ss, jj = np.nonzero(has)
        if ss.size:
            cells = bi[ss, jj] * nj + jj
            v = chv[ss, cells]
            p = chp[ss, cells]
            run.cross.delete_at(ss, cells, cpos[ss, cells])
            run.out.insert(ss, jj, v, p)


#: Policy classes (by exact type) the fast backend implements, per model.
SUPPORTED_POLICIES: Dict[Tuple[str, Type], Type[_Stepper]] = {
    ("cioq", GMPolicy): _GMStepper,
    ("cioq", PGPolicy): _PGStepper,
    ("cioq", MaxMatchPolicy): _MaxMatchStepper,
    ("cioq", MaxWeightMatchPolicy): _MaxWeightStepper,
    ("cioq", RandomMatchPolicy): _RandomStepper,
    ("cioq", RoundRobinPolicy): _RoundRobinStepper,
    ("cioq", FifoCIOQPolicy): _FifoCIOQStepper,
    ("crossbar", CGUPolicy): _CGUStepper,
    ("crossbar", CPGPolicy): _CPGStepper,
    ("crossbar", CrossbarGreedyWeightedPolicy): _CGWStepper,
    ("crossbar", FifoCrossbarPolicy): _FifoCrossbarStepper,
}


# ---------------------------------------------------------------------------
# The lockstep batch run
# ---------------------------------------------------------------------------

class _BatchRun:
    def __init__(self, model: str, proto, config: SwitchConfig,
                 traces: Sequence[Trace], max_extra_slots: Optional[int],
                 trace_occupancy: bool, metrics=None, lane_base: int = 0):
        stepper_cls = SUPPORTED_POLICIES.get((model, type(proto)))
        if stepper_cls is None:
            raise BackendUnsupported(
                f"the fast backend has no {model} stepper for "
                f"{type(proto).__name__}"
            )
        if getattr(proto, "stats", None) is not None:
            raise BackendUnsupported(
                "the fast backend cannot collect MatchingStats"
            )
        S = len(traces)
        self.S = S
        self.NI = config.n_in
        self.NJ = config.n_out
        self.B_in = config.b_in
        self.B_out = config.b_out
        self.B_cross = config.b_cross
        self.speedup = config.speedup
        self.model = model
        self.crossbar = model == "crossbar"
        self.trace_occupancy = trace_occupancy
        self.full_NI = (1 << self.NI) - 1
        self.full_NJ = (1 << self.NJ) - 1

        self.voq = _QueueFamily(S, self.NI * self.NJ, self.B_in)
        self.out = _QueueFamily(S, self.NJ, self.B_out)
        self.cross = (_QueueFamily(S, self.NI * self.NJ, self.B_cross)
                      if self.crossbar else None)

        extra = (drain_bound(config) if max_extra_slots is None
                 else max_extra_slots)
        self.lanes: List[_Lane] = []
        for idx, trace in enumerate(traces):
            if trace.n_in != config.n_in or trace.n_out != config.n_out:
                raise ValueError(
                    f"trace is {trace.n_in}x{trace.n_out} but switch is "
                    f"{config.n_in}x{config.n_out}"
                )
            horizon = trace.n_slots + extra
            result = SimulationResult(
                policy_name=proto.name, config=config,
                n_arrival_slots=trace.n_slots, horizon=horizon,
            )
            lane = _Lane(idx, _prep_trace(trace, self.NJ), trace.n_slots,
                         horizon, result)
            lane.sent_po = [0] * self.NJ
            lane.val_po = [0.0] * self.NJ
            self.lanes.append(lane)

        self.active: List[_Lane] = list(self.lanes)
        self.active_mask = np.ones(S, dtype=bool)
        self.active_ids: List[int] = [lane.idx for lane in self.active]
        self.all_active = True

        # Lane-major concatenated arrival events per slot, for the
        # whole batch (lanes cannot retire before their arrivals end).
        self.max_n_arr = max((lane.n_arr for lane in self.lanes), default=0)
        self.slot_events: List[Optional[_GlobalSlot]] = []
        for t in range(self.max_n_arr):
            parts = [(lane, lane.slots[t]) for lane in self.lanes
                     if t < lane.n_arr and lane.slots[t] is not None]
            self.slot_events.append(_GlobalSlot(parts) if parts else None)

        self.stepper = stepper_cls(self, proto)
        self.pushout = self.stepper.arrival == "pushout"
        for lane in self.lanes:
            self.stepper.init_lane(lane)

        # Metrics guard: resolved once per batch, never per slot (the
        # same compiled-out contract as the reference kernel).
        self.metrics = (metrics if metrics is not None and metrics.enabled
                        else None)
        self.lane_base = lane_base
        self.m_every = self.metrics.every_k if self.metrics is not None else 0
        self.m_timed = self.metrics is not None and self.metrics.timed
        # Per-lane sample buffers, flushed lane-major after the run so
        # the recorder's series is byte-identical to running the same
        # traces serially through the reference kernel.
        self._samples: Optional[List[List[tuple]]] = (
            [[] for _ in range(S)] if self.m_every > 0 else None)

    # -- shared mask/bit helpers -------------------------------------------

    @property
    def active_bounds(self) -> List[int]:
        out = []
        for s in self.active_ids:
            out.append(s)
            out.append(s + 1)
        return out

    def pack_bool_rows(self, mat: np.ndarray) -> List[int]:
        """Pack each boolean row of a 2-D array into one Python int
        bitmask (bit ``c`` = column ``c``; little-endian platform)."""
        packed = np.packbits(mat, axis=1, bitorder="little")
        nb = packed.shape[1]
        if nb <= 8:
            if nb < 8:
                buf = np.zeros((packed.shape[0], 8), dtype=np.uint8)
                buf[:, :nb] = packed
                packed = buf
            return packed.view(np.uint64).ravel().tolist()
        w = (nb + 7) // 8
        if nb < 8 * w:
            buf = np.zeros((packed.shape[0], 8 * w), dtype=np.uint8)
            buf[:, :nb] = packed
            packed = buf
        stride = 8 * w
        data = packed.tobytes()
        return [
            int.from_bytes(data[o:o + stride], "little")
            for o in range(0, len(data), stride)
        ]

    def voq_rowbits(self) -> List[int]:
        """Per-(lane, input) bitmask of non-empty VOQs (inactive lanes'
        rows are garbage; scans must restrict to ``active_ids``)."""
        return self.pack_bool_rows(
            (self.voq.len > 0).reshape(-1, self.NJ))

    def voq_sparse(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(lane, cell)`` indices of every non-empty VOQ in an active
        lane, lane-major and cell-ascending."""
        ne = self.voq.len > 0
        if not self.all_active:
            ne &= self.active_mask[:, None]
        return np.nonzero(ne)

    def cioq_edge_mask(self) -> np.ndarray:
        """GM's induced graph: VOQ non-empty and output not full."""
        mask = (self.voq.len > 0).reshape(self.S, self.NI, self.NJ) & (
            self.out.len < self.B_out)[:, None, :]
        if not self.all_active:
            mask &= self.active_mask[:, None, None]
        return mask

    # -- shared transfer applicators ---------------------------------------

    def apply_cioq_head_transfers(self, ms, mq, mj, pre_s=None, pre_j=None):
        """Pop VOQ heads at cells ``mq`` and insert them into outputs
        ``mj``; optionally first delete the tails of outputs
        ``(pre_s, pre_j)`` (preemption victims, already accounted)."""
        if not ms:
            return
        s_arr = np.array(ms, dtype=np.int64)
        q_arr = np.array(mq, dtype=np.int64)
        j_arr = np.array(mj, dtype=np.int64)
        v, p = self.voq.pop_heads(s_arr, q_arr)
        if pre_s:
            self.out.delete_at(np.array(pre_s, dtype=np.int64),
                               np.array(pre_j, dtype=np.int64),
                               np.zeros(len(pre_s), dtype=_LEN_DTYPE))
        self.out.insert(s_arr, j_arr, v, p)

    def greedy_cioq_preempt(self, sl, cl, il, jl, full_out, tailv):
        """PG's greedy maximal matching over globally value-sorted edges
        (independent per-lane port masks), with preemption accounting in
        each lane's chosen-transfer order."""
        fo = full_out.tolist()
        tv = tailv.tolist()
        lanes = self.lanes
        left = [0] * self.S
        right = [0] * self.S
        ms: List[int] = []
        mq: List[int] = []
        mj: List[int] = []
        ps: List[int] = []
        pj: List[int] = []
        for s, c, i, j in zip(sl, cl, il, jl):
            ib = 1 << i
            lm = left[s]
            if lm & ib:
                continue
            jb = 1 << j
            rm = right[s]
            if rm & jb:
                continue
            left[s] = lm | ib
            right[s] = rm | jb
            ms.append(s)
            mq.append(c)
            mj.append(j)
            if fo[s][j]:
                lane = lanes[s]
                lane.n_pre_out += 1
                lane.v_pre_out += tv[s][j]
                lane.buffered -= 1
                ps.append(s)
                pj.append(j)
        self.apply_cioq_head_transfers(ms, mq, mj, pre_s=ps, pre_j=pj)

    # -- slot phases --------------------------------------------------------

    def _arrival_phase(self, t: int) -> None:
        g = self.slot_events[t] if t < self.max_n_arr else None
        if g is None:
            return
        voq = self.voq
        b_in = self.B_in
        single = len(g.rounds) == 1
        accbuf = prebuf = tvbuf = None
        if not single:
            accbuf = np.empty(g.n, dtype=bool)
            if self.pushout:
                prebuf = np.zeros(g.n, dtype=bool)
                tvbuf = np.empty(g.n, dtype=np.float64)
        acc = pre = tailv = None
        for ids in g.rounds:
            if single:
                s_idx, cells, vals, pids = g.ev_s, g.ev_c, g.ev_v, g.ev_p
            else:
                s_idx = g.ev_s[ids]
                cells = g.ev_c[ids]
                vals = g.ev_v[ids]
                pids = g.ev_p[ids]
            ln = voq.len[s_idx, cells]
            if self.pushout:
                space = ln < b_in
                tailv = voq.val[s_idx, cells, 0]
                acc = space | (tailv < vals)
                pre = acc & ~space
                if pre.any():
                    voq.delete_at(s_idx[pre], cells[pre],
                                  np.zeros(int(pre.sum()), dtype=_LEN_DTYPE))
            else:
                acc = ln < b_in
            voq.insert(s_idx[acc], cells[acc], vals[acc], pids[acc])
            if not single:
                accbuf[ids] = acc
                if self.pushout:
                    prebuf[ids] = pre
                    tvbuf[ids] = tailv
        if single:
            accbuf = acc
            prebuf = pre
            tvbuf = tailv
        # Reference-order accounting, one Python loop per lane.
        accl = accbuf.tolist()
        if self.pushout:
            prel = prebuf.tolist()
            tvl = tvbuf.tolist()
            for lane, off, vlist in g.lanes:
                k = off
                for pv in vlist:
                    lane.n_arrived += 1
                    lane.value_arrived += pv
                    if accl[k]:
                        if prel[k]:
                            lane.n_pre_voq += 1
                            lane.v_pre_voq += tvl[k]
                            lane.buffered -= 1
                        lane.n_accepted += 1
                        lane.value_accepted += pv
                        lane.buffered += 1
                    else:
                        lane.n_rejected += 1
                        lane.value_rejected += pv
                    k += 1
        else:
            for lane, off, vlist in g.lanes:
                k = off
                for pv in vlist:
                    lane.n_arrived += 1
                    lane.value_arrived += pv
                    if accl[k]:
                        lane.n_accepted += 1
                        lane.value_accepted += pv
                        lane.buffered += 1
                    else:
                        lane.n_rejected += 1
                        lane.value_rejected += pv
                    k += 1

    def _transmit_phase(self, t: int) -> None:
        out = self.out
        nonempty = out.len > 0
        if not self.all_active:
            nonempty &= self.active_mask[:, None]
        ss, jj = np.nonzero(nonempty)
        if ss.size == 0:
            return
        if self.stepper.transmit == "hol":
            pos, v, _hp = out.hols_at(ss, jj)
            out.delete_at(ss, jj, pos)
        else:
            v, _p = out.pop_heads(ss, jj)
        lanes = self.lanes
        for s, j, pv in zip(ss.tolist(), jj.tolist(), v.tolist()):
            lane = lanes[s]
            lane.benefit += pv
            lane.n_sent += 1
            lane.buffered -= 1
            lane.sent_po[j] += 1
            lane.val_po[j] += pv

    def _occupancy_phase(self, t: int) -> None:
        vt = self.voq.len.sum(axis=1).tolist()
        ot = self.out.len.sum(axis=1).tolist()
        ct = (self.cross.len.sum(axis=1).tolist() if self.crossbar
              else [0] * self.S)
        for lane in self.active:
            s = lane.idx
            lane.result.occupancy.append((t, vt[s], ct[s], ot[s]))

    def _sample_phase(self, t: int, sent_before: List[int]) -> None:
        """Buffer one end-of-slot metrics sample per active lane.

        Occupancy totals come from vectorized ``len`` reductions across
        the whole batch (one numpy sum per queue family, not a Python
        walk per lane), matching ``switch.occupancy_totals()`` exactly.
        """
        vt = self.voq.len.sum(axis=1).tolist()
        ot = self.out.len.sum(axis=1).tolist()
        ct = (self.cross.len.sum(axis=1).tolist() if self.crossbar
              else [0] * self.S)
        base = self.lane_base
        samples = self._samples
        for lane in self.active:
            s = lane.idx
            samples[s].append((
                t, base + s, vt[s], ct[s], ot[s],
                lane.n_sent - sent_before[s], lane.n_arrived, lane.n_sent,
                lane.n_rejected,
                lane.n_pre_voq + lane.n_pre_cross + lane.n_pre_out,
            ))

    def _flush_metrics(self, t_arrival: float, t_schedule: float,
                       t_transmit: float, run0: float) -> None:
        """Flush buffered samples (lane-major) and per-lane run counters
        into the recorder, in the exact order serial reference runs over
        the same traces would have produced them."""
        m = self.metrics
        if self._samples is not None:
            slot_sample = m.slot_sample
            for lane in self.lanes:
                for samp in self._samples[lane.idx]:
                    slot_sample(*samp)
        for lane in self.lanes:
            m.counter("runs_total")
            m.counter("slots_total", lane.slots_exec)
            m.counter("packets_arrived_total", lane.n_arrived)
            m.counter("packets_sent_total", lane.n_sent)
            m.counter("packets_rejected_total", lane.n_rejected)
            m.counter("packets_preempted_total",
                      lane.n_pre_voq + lane.n_pre_cross + lane.n_pre_out)
            m.counter("benefit_total", lane.benefit)
        if self.m_timed:
            m.add_time("phase_arrival_seconds", t_arrival)
            m.add_time("phase_schedule_seconds", t_schedule)
            m.add_time("phase_transmit_seconds", t_transmit)
            m.add_time("run_seconds", perf_counter() - run0)

    def _retire(self, t: int) -> None:
        still = []
        for lane in self.active:
            if (not (lane.buffered == 0 and t >= lane.n_arr)
                    and t + 1 < lane.horizon):
                still.append(lane)
            else:
                lane.slots_exec = t + 1
        if len(still) != len(self.active):
            self.active = still
            self.active_ids = [lane.idx for lane in still]
            self.all_active = len(still) == self.S
            self.active_mask[:] = False
            if still:
                self.active_mask[self.active_ids] = True

    def _finalize(self, lane: _Lane) -> SimulationResult:
        res = lane.result
        res.n_arrived = lane.n_arrived
        res.value_arrived = lane.value_arrived
        res.n_accepted = lane.n_accepted
        res.value_accepted = lane.value_accepted
        res.n_rejected = lane.n_rejected
        res.value_rejected = lane.value_rejected
        res.n_preempted_voq = lane.n_pre_voq
        res.value_preempted_voq = lane.v_pre_voq
        res.n_preempted_cross = lane.n_pre_cross
        res.value_preempted_cross = lane.v_pre_cross
        res.n_preempted_out = lane.n_pre_out
        res.value_preempted_out = lane.v_pre_out
        res.benefit = lane.benefit
        res.n_sent = lane.n_sent
        res.sent_per_output = {
            j: c for j, c in enumerate(lane.sent_po) if c
        }
        res.value_per_output = {
            j: lane.val_po[j] for j in res.sent_per_output
        }
        # Residuals in buffered_packets() order: VOQ grid, (crosspoint
        # grid,) outputs; within each queue head -> tail.
        n_res = 0
        v_res = 0.0
        s = lane.idx
        families = [self.voq, self.cross, self.out] if self.crossbar else [
            self.voq, self.out]
        for fam in families:
            lens = fam.len[s]
            nz = np.nonzero(lens)[0]
            if nz.size == 0:
                continue
            for q, l in zip(nz.tolist(), lens[nz].tolist()):
                n_res += l
                row = fam.val[s, q, :l].tolist()
                for vv in reversed(row):
                    v_res += vv
        res.n_residual = n_res
        res.value_residual = v_res
        res.check_conservation()
        return res

    def run(self) -> List[SimulationResult]:
        every = self.m_every
        sampling = every > 0
        timed = self.m_timed
        t_arrival = t_schedule = t_transmit = 0.0
        run0 = perf_counter() if timed else 0.0
        sent_before: List[int] = []
        t = 0
        while self.active:
            sample_slot = sampling and t % every == 0
            if sample_slot:
                sent_before = [lane.n_sent for lane in self.lanes]
            if timed:
                ph0 = perf_counter()
                self._arrival_phase(t)
                ph1 = perf_counter()
                t_arrival += ph1 - ph0
                for cyc in range(self.speedup):
                    self.stepper.cycle(t, cyc)
                ph2 = perf_counter()
                t_schedule += ph2 - ph1
                self._transmit_phase(t)
                t_transmit += perf_counter() - ph2
            else:
                self._arrival_phase(t)
                for cyc in range(self.speedup):
                    self.stepper.cycle(t, cyc)
                self._transmit_phase(t)
            if self.trace_occupancy:
                self._occupancy_phase(t)
            if sample_slot:
                self._sample_phase(t, sent_before)
            self._retire(t)
            t += 1
        results = [self._finalize(lane) for lane in self.lanes]
        if self.metrics is not None:
            self._flush_metrics(t_arrival, t_schedule, t_transmit, run0)
        return results


# ---------------------------------------------------------------------------
# Entry points (called via the engine's backend dispatch)
# ---------------------------------------------------------------------------

def _reject_unsupported(record: bool, check_invariants: bool) -> None:
    if record:
        raise BackendUnsupported(
            "the fast backend does not implement record=True event logs"
        )
    if check_invariants:
        raise BackendUnsupported(
            "the fast backend does not implement check_invariants=True"
        )


def run_batch(
    model: str,
    proto,
    config: SwitchConfig,
    traces: Sequence[Trace],
    *,
    record: bool = False,
    max_extra_slots: Optional[int] = None,
    check_invariants: bool = False,
    trace_occupancy: bool = False,
    metrics=None,
) -> List[SimulationResult]:
    """Run ``proto`` (a policy instance used read-only, as the parameter
    prototype) over every trace in lockstep; returns one
    :class:`SimulationResult` per trace, in order.

    With an active ``metrics`` recorder, per-slot samples are buffered
    during the lockstep loop and flushed lane-major afterwards, so the
    recorder ends up byte-identical to serial reference runs over the
    same traces (lane ``i`` is tagged ``i``)."""
    _reject_unsupported(record, check_invariants)
    if not traces:
        return []
    return _BatchRun(model, proto, config, traces, max_extra_slots,
                     trace_occupancy, metrics=metrics).run()


def run_single(
    model: str,
    policy,
    config: SwitchConfig,
    trace: Trace,
    *,
    record: bool = False,
    max_extra_slots: Optional[int] = None,
    check_invariants: bool = False,
    trace_occupancy: bool = False,
    metrics=None,
    metrics_lane: int = 0,
) -> SimulationResult:
    """Single-trace convenience wrapper around :func:`run_batch`."""
    _reject_unsupported(record, check_invariants)
    return _BatchRun(
        model, policy, config, [trace], max_extra_slots,
        trace_occupancy, metrics=metrics, lane_base=metrics_lane,
    ).run()[0]
