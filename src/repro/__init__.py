"""repro — Online Packet Scheduling for CIOQ and Buffered Crossbar Switches.

A faithful, laptop-scale reproduction of

    Kamal Al-Bawani, Matthias Englert, Matthias Westermann:
    "Online Packet Scheduling for CIOQ and Buffered Crossbar Switches",
    SPAA 2016; Algorithmica (2018), doi:10.1007/s00453-018-0421-x.

The package provides:

* the paper's four algorithms (:class:`GMPolicy`, :class:`PGPolicy`,
  :class:`CGUPolicy`, :class:`CPGPolicy`) in :mod:`repro.core`,
* discrete-time simulators of both switch architectures
  (:mod:`repro.switch`, :mod:`repro.simulation`),
* matching engines and baseline schedulers (:mod:`repro.scheduling`),
* traffic generators including adversarial gadgets (:mod:`repro.traffic`),
* an exact offline optimum (:mod:`repro.offline`) against which
  empirical competitive ratios are measured,
* the analysis machinery of the proofs (:mod:`repro.theory`),
* the experiment harness (:mod:`repro.analysis`), and
* multi-seed replication with confidence intervals (:mod:`repro.stats`).

Quickstart::

    from repro import (
        GMPolicy, SwitchConfig, BernoulliTraffic, run_cioq, cioq_opt,
    )

    config = SwitchConfig.square(4, speedup=2, b_in=4, b_out=4)
    trace = BernoulliTraffic(4, 4, load=0.9).generate(n_slots=50, seed=1)
    onl = run_cioq(GMPolicy(), config, trace)
    opt = cioq_opt(trace, config)
    print(f"GM delivered {onl.benefit:g}, OPT {opt.benefit:g}, "
          f"ratio {opt.benefit / onl.benefit:.3f}  (Theorem 1 bound: 3)")
"""

from importlib import import_module

from ._version import PAPER, __version__

# Public names resolve lazily (PEP 562): ``import repro`` stays cheap
# and — crucially — numpy-free, so the reference simulation backend
# imports and runs on a bare Python install (see docs/backends.md).
# Subsystems that genuinely need numpy (traffic generators, the exact
# offline optimum, the fast backend) only import it when first touched.
_EXPORTS = {
    # core algorithms
    "BETA_STAR": ".core",
    "CGU_RATIO": ".core",
    "CGUPolicy": ".core",
    "CPGPolicy": ".core",
    "GM_RATIO": ".core",
    "GMPolicy": ".core",
    "PGPolicy": ".core",
    "cpg_optimal_params": ".core",
    "cpg_optimal_ratio": ".core",
    "cpg_ratio": ".core",
    "pg_optimal_beta": ".core",
    "pg_optimal_ratio": ".core",
    "pg_ratio": ".core",
    # offline optimum
    "OPT_MODES": ".offline",
    "bounds_opt": ".offline",
    "cioq_opt": ".offline",
    "cioq_upper_bound": ".offline",
    "crossbar_opt": ".offline",
    "select_opt_mode": ".offline",
    "solve_opt": ".offline",
    "windowed_opt": ".offline",
    # scheduling
    "CIOQPolicy": ".scheduling",
    "CrossbarPolicy": ".scheduling",
    "MaxMatchPolicy": ".scheduling",
    "MaxWeightMatchPolicy": ".scheduling",
    "RandomMatchPolicy": ".scheduling",
    "RoundRobinPolicy": ".scheduling",
    # parallel sweep substrate
    "SweepExecutor": ".parallel",
    "SweepPoint": ".parallel",
    "run_sweep_point": ".parallel",
    # scenario subsystem
    "ScenarioRun": ".scenarios",
    "ScenarioSpec": ".scenarios",
    "all_scenarios": ".scenarios",
    "get_scenario": ".scenarios",
    "register_scenario": ".scenarios",
    "run_scenario": ".scenarios",
    "scenario_names": ".scenarios",
    "write_artifacts": ".scenarios",
    # simulation
    "SimulationResult": ".simulation",
    "run_cioq": ".simulation",
    "run_crossbar": ".simulation",
    # replication & statistics
    "ReplicatedRun": ".stats",
    "ReplicationPlan": ".stats",
    "Welford": ".stats",
    "replicate_scenario": ".stats",
    "summarize_artifact": ".stats",
    "write_replicated_artifacts": ".stats",
    # switch
    "CIOQSwitch": ".switch",
    "CrossbarSwitch": ".switch",
    "Packet": ".switch",
    "SwitchConfig": ".switch",
    "render_cioq": ".switch",
    "render_crossbar": ".switch",
    # traffic
    "BernoulliTraffic": ".traffic",
    "BurstyTraffic": ".traffic",
    "DiagonalTraffic": ".traffic",
    "HotspotTraffic": ".traffic",
    "MarkovModulatedTraffic": ".traffic",
    "ParetoBurstTraffic": ".traffic",
    "Trace": ".traffic",
    "TraceReplayTraffic": ".traffic",
    "pareto_values": ".traffic",
    "two_value": ".traffic",
    "uniform_values": ".traffic",
    "unit_values": ".traffic",
}


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(module, __name__), name)
    globals()[name] = value  # cache: subsequent access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))

__all__ = [
    "PAPER",
    "__version__",
    # core algorithms
    "GMPolicy",
    "PGPolicy",
    "CGUPolicy",
    "CPGPolicy",
    "BETA_STAR",
    "GM_RATIO",
    "CGU_RATIO",
    "pg_ratio",
    "pg_optimal_beta",
    "pg_optimal_ratio",
    "cpg_ratio",
    "cpg_optimal_params",
    "cpg_optimal_ratio",
    # offline optimum
    "cioq_opt",
    "crossbar_opt",
    "cioq_upper_bound",
    "solve_opt",
    "select_opt_mode",
    "windowed_opt",
    "bounds_opt",
    "OPT_MODES",
    # scheduling
    "CIOQPolicy",
    "CrossbarPolicy",
    "MaxMatchPolicy",
    "MaxWeightMatchPolicy",
    "RandomMatchPolicy",
    "RoundRobinPolicy",
    # simulation
    "run_cioq",
    "run_crossbar",
    "SimulationResult",
    # parallel sweep substrate
    "SweepExecutor",
    "SweepPoint",
    "run_sweep_point",
    # scenario subsystem
    "ScenarioSpec",
    "ScenarioRun",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "run_scenario",
    "write_artifacts",
    # replication & statistics
    "Welford",
    "ReplicationPlan",
    "ReplicatedRun",
    "replicate_scenario",
    "summarize_artifact",
    "write_replicated_artifacts",
    # switch
    "SwitchConfig",
    "Packet",
    "CIOQSwitch",
    "CrossbarSwitch",
    "render_cioq",
    "render_crossbar",
    # traffic
    "Trace",
    "BernoulliTraffic",
    "BurstyTraffic",
    "HotspotTraffic",
    "DiagonalTraffic",
    "MarkovModulatedTraffic",
    "ParetoBurstTraffic",
    "TraceReplayTraffic",
    "unit_values",
    "uniform_values",
    "two_value",
    "pareto_values",
]
