"""repro — Online Packet Scheduling for CIOQ and Buffered Crossbar Switches.

A faithful, laptop-scale reproduction of

    Kamal Al-Bawani, Matthias Englert, Matthias Westermann:
    "Online Packet Scheduling for CIOQ and Buffered Crossbar Switches",
    SPAA 2016; Algorithmica (2018), doi:10.1007/s00453-018-0421-x.

The package provides:

* the paper's four algorithms (:class:`GMPolicy`, :class:`PGPolicy`,
  :class:`CGUPolicy`, :class:`CPGPolicy`) in :mod:`repro.core`,
* discrete-time simulators of both switch architectures
  (:mod:`repro.switch`, :mod:`repro.simulation`),
* matching engines and baseline schedulers (:mod:`repro.scheduling`),
* traffic generators including adversarial gadgets (:mod:`repro.traffic`),
* an exact offline optimum (:mod:`repro.offline`) against which
  empirical competitive ratios are measured,
* the analysis machinery of the proofs (:mod:`repro.theory`),
* the experiment harness (:mod:`repro.analysis`), and
* multi-seed replication with confidence intervals (:mod:`repro.stats`).

Quickstart::

    from repro import (
        GMPolicy, SwitchConfig, BernoulliTraffic, run_cioq, cioq_opt,
    )

    config = SwitchConfig.square(4, speedup=2, b_in=4, b_out=4)
    trace = BernoulliTraffic(4, 4, load=0.9).generate(n_slots=50, seed=1)
    onl = run_cioq(GMPolicy(), config, trace)
    opt = cioq_opt(trace, config)
    print(f"GM delivered {onl.benefit:g}, OPT {opt.benefit:g}, "
          f"ratio {opt.benefit / onl.benefit:.3f}  (Theorem 1 bound: 3)")
"""

from ._version import PAPER, __version__
from .core import (
    BETA_STAR,
    CGU_RATIO,
    CGUPolicy,
    CPGPolicy,
    GM_RATIO,
    GMPolicy,
    PGPolicy,
    cpg_optimal_params,
    cpg_optimal_ratio,
    cpg_ratio,
    pg_optimal_beta,
    pg_optimal_ratio,
    pg_ratio,
)
from .offline import (
    cioq_opt,
    cioq_upper_bound,
    crossbar_opt,
)
from .scheduling import (
    CIOQPolicy,
    CrossbarPolicy,
    MaxMatchPolicy,
    MaxWeightMatchPolicy,
    RandomMatchPolicy,
    RoundRobinPolicy,
)
from .parallel import SweepExecutor, SweepPoint, run_sweep_point
from .scenarios import (
    ScenarioRun,
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
    write_artifacts,
)
from .simulation import SimulationResult, run_cioq, run_crossbar
from .stats import (
    ReplicatedRun,
    ReplicationPlan,
    Welford,
    replicate_scenario,
    summarize_artifact,
    write_replicated_artifacts,
)
from .switch import (
    CIOQSwitch,
    CrossbarSwitch,
    Packet,
    SwitchConfig,
    render_cioq,
    render_crossbar,
)
from .traffic import (
    BernoulliTraffic,
    BurstyTraffic,
    DiagonalTraffic,
    HotspotTraffic,
    MarkovModulatedTraffic,
    ParetoBurstTraffic,
    Trace,
    TraceReplayTraffic,
    pareto_values,
    two_value,
    uniform_values,
    unit_values,
)

__all__ = [
    "PAPER",
    "__version__",
    # core algorithms
    "GMPolicy",
    "PGPolicy",
    "CGUPolicy",
    "CPGPolicy",
    "BETA_STAR",
    "GM_RATIO",
    "CGU_RATIO",
    "pg_ratio",
    "pg_optimal_beta",
    "pg_optimal_ratio",
    "cpg_ratio",
    "cpg_optimal_params",
    "cpg_optimal_ratio",
    # offline optimum
    "cioq_opt",
    "crossbar_opt",
    "cioq_upper_bound",
    # scheduling
    "CIOQPolicy",
    "CrossbarPolicy",
    "MaxMatchPolicy",
    "MaxWeightMatchPolicy",
    "RandomMatchPolicy",
    "RoundRobinPolicy",
    # simulation
    "run_cioq",
    "run_crossbar",
    "SimulationResult",
    # parallel sweep substrate
    "SweepExecutor",
    "SweepPoint",
    "run_sweep_point",
    # scenario subsystem
    "ScenarioSpec",
    "ScenarioRun",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "run_scenario",
    "write_artifacts",
    # replication & statistics
    "Welford",
    "ReplicationPlan",
    "ReplicatedRun",
    "replicate_scenario",
    "summarize_artifact",
    "write_replicated_artifacts",
    # switch
    "SwitchConfig",
    "Packet",
    "CIOQSwitch",
    "CrossbarSwitch",
    "render_cioq",
    "render_crossbar",
    # traffic
    "Trace",
    "BernoulliTraffic",
    "BurstyTraffic",
    "HotspotTraffic",
    "DiagonalTraffic",
    "MarkovModulatedTraffic",
    "ParetoBurstTraffic",
    "TraceReplayTraffic",
    "unit_values",
    "uniform_values",
    "two_value",
    "pareto_values",
]
