"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------

``figures``
    Print the paper's Figure 1 / Figure 2 topology renderings.
``run``
    Simulate a policy on generated traffic and print the result summary
    (optionally with delay statistics and an occupancy sparkline).
``ratio``
    Measure the empirical competitive ratio of a policy against the
    exact offline optimum.
``sweep``
    Run a (load x seed) grid of simulations for several policies —
    optionally fanned out over ``--workers`` processes and cached on
    disk via ``--cache-dir`` — and print per-cell plus per-load
    aggregate tables.  Results are bit-identical for any worker count.
``scenarios``
    The declarative experiment subsystem (see docs/scenarios.md):
    ``list`` the registered catalog, ``show`` one spec, ``run`` a
    scenario (by name or from a TOML/JSON file) and write versioned
    JSON/CSV artifacts under ``results/``, or ``export`` a spec as
    TOML/JSON for editing.  ``run --replicates N --ci 95`` replicates
    the scenario across N seeds and adds mean/std/CI summary artifacts
    (see docs/statistics.md).
``stats``
    Statistics over written result artifacts: ``summarize`` recomputes
    mean/std/CI summary rows from an existing ``results/<name>/``
    record without re-simulating.
``obs``
    Observability surface (see docs/observability.md): ``export``
    renders a written ``metrics.jsonl`` stream as Prometheus text,
    ``tail`` prints its last events.  ``sweep``, ``scenarios run`` and
    ``trace replay`` grow ``--metrics`` / ``--metrics-every K`` /
    ``--metrics-out DIR`` flags that collect deterministic run metrics
    (identical bytes for any worker count) plus a quarantined wall-time
    ledger.
``submit`` / ``serve`` / ``farm``
    The experiment farm (see docs/parallel.md): ``submit`` enqueues
    scenario jobs on a file-based queue, ``serve`` drains the queue
    through one persistent worker pool and shared content-addressed
    result store (killed servers requeue and resume incrementally —
    artifacts stay byte-identical to a fresh serial run), and ``farm
    status`` / ``farm gc`` inspect the queue and reclaim stale store
    files.
``constants``
    Print the paper's analytical constants with numerical verification.

Examples::

    python -m repro.cli run --policy pg --model cioq --n 4 --load 1.3 \
        --values pareto --slots 50 --seed 3 --delays
    python -m repro.cli ratio --policy gm --n 3 --load 1.2 --slots 20
    python -m repro.cli sweep --policies gm,maxmatch --loads 0.8,1.0,1.2 \
        --seeds 4 --slots 30 --workers 4
    python -m repro.cli scenarios list
    python -m repro.cli scenarios run hotspot-incast --workers 4
    python -m repro.cli scenarios run smoke-bernoulli --replicates 32 \
        --ci 95 --workers 4
    python -m repro.cli stats summarize smoke-bernoulli --bootstrap 1000
    python -m repro.cli scenarios export qos-two-class --format toml
    python -m repro.cli figures --n 3
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

from .analysis.latency import occupancy_report
from .analysis.ratio import measure_cioq_ratio, measure_crossbar_ratio
from .analysis.report import format_table
from .core.params import GM_RATIO, cpg_optimal_ratio
from .scenarios import POLICY_CLASSES, RESULTS_DIR
from .simulation.engine import run_cioq, run_crossbar
from .switch.cioq import CIOQSwitch
from .switch.config import SwitchConfig
from .switch.crossbar import CrossbarSwitch
from .switch.diagram import render_cioq, render_crossbar
from .traffic.appmix import ApplicationMixTraffic
from .traffic.bernoulli import BernoulliTraffic
from .traffic.bursty import BurstyTraffic
from .traffic.hotspot import DiagonalTraffic, HotspotTraffic
from .traffic.values import (
    pareto_values,
    two_value,
    uniform_values,
    unit_values,
)

# Policy classes come from the scenario subsystem's shared registry;
# the CLI annotates each with its proven ratio bound (None = no bound,
# or bound depends on runtime parameters and is filled in _make_policy).
_BOUNDS = {
    ("cioq", "gm"): GM_RATIO,
    ("cioq", "maxmatch"): GM_RATIO,
    ("cioq", "maxweight"): 6.0,
    ("crossbar", "cgu"): 3.0,
}
CIOQ_POLICIES = {
    name: (cls, _BOUNDS.get(("cioq", name)))
    for name, cls in POLICY_CLASSES["cioq"].items()
}
CROSSBAR_POLICIES = {
    name: (cls, _BOUNDS.get(("crossbar", name)))
    for name, cls in POLICY_CLASSES["crossbar"].items()
}
VALUE_MODELS = {
    "unit": unit_values,
    "uniform": lambda: uniform_values(1, 100),
    "two-value": lambda: two_value(10.0, 0.25),
    "pareto": lambda: pareto_values(1.5),
}
TRAFFIC_MODELS = ("bernoulli", "bursty", "hotspot", "diagonal", "appmix")


def _build_config(args) -> SwitchConfig:
    return SwitchConfig.square(
        args.n,
        speedup=args.speedup,
        b_in=args.b_in,
        b_out=args.b_out,
        b_cross=args.b_cross,
    )


def _build_traffic(args, load=None):
    load = args.load if load is None else load
    values = VALUE_MODELS[args.values]()
    if args.traffic == "bernoulli":
        return BernoulliTraffic(args.n, args.n, load=load,
                                value_model=values)
    if args.traffic == "bursty":
        return BurstyTraffic(args.n, args.n, burst_load=max(load, 0.1) * 2,
                             value_model=values)
    if args.traffic == "hotspot":
        return HotspotTraffic(args.n, args.n, load=load,
                              hot_fraction=0.6, value_model=values)
    if args.traffic == "appmix":
        return ApplicationMixTraffic(args.n, args.n, load_scale=load,
                                     value_model=values)
    return DiagonalTraffic(args.n, args.n, load=load, value_model=values)


def _make_policy(name: str, model: str, beta: Optional[float]):
    table = CIOQ_POLICIES if model == "cioq" else CROSSBAR_POLICIES
    if name not in table:
        raise SystemExit(
            f"unknown policy {name!r} for model {model}; choose from "
            f"{sorted(table)}"
        )
    factory, bound = table[name]
    if name == "pg":
        policy = factory(beta=beta) if beta else factory()
        from .core.params import pg_ratio

        bound = pg_ratio(policy.beta)
    elif name == "cpg":
        policy = factory()
        bound = cpg_optimal_ratio()
    else:
        policy = factory()
    return policy, bound


def _resolve_metrics_every(args) -> Optional[int]:
    """Map the ``--metrics``/``--metrics-every`` pair onto the executor
    contract: ``None`` = off, ``0`` = counters only, ``K >= 1`` = also
    sample the per-slot series every K slots."""
    if args.metrics_every is not None:
        if args.metrics_every < 1:
            raise SystemExit("--metrics-every must be >= 1")
        return args.metrics_every
    return 0 if args.metrics else None


def _stderr_progress(event) -> None:
    """Heartbeat printer for ``SweepExecutor`` progress events (stderr,
    so stdout tables and artifacts stay clean)."""
    kind = event.get("event")
    if kind == "cache":
        print(f"# cache scan: {event['hits']} hits, {event['misses']} "
              f"misses of {event['total']} points", file=sys.stderr)
    elif kind == "point":
        print(f"# point {event['index'] + 1}/{event['total']} "
              f"pid={event['pid']} {event['elapsed']:.3f}s",
              file=sys.stderr)


def _emit_metrics(metrics_out: Optional[str], snapshot, walltimes,
                  extra=None) -> None:
    """Write ``metrics.jsonl`` + ``timings.json`` into ``metrics_out``,
    or print the Prometheus rendering when no directory is given."""
    from .obs import (
        METRICS_FILENAME,
        TIMINGS_FILENAME,
        prometheus_text,
        write_jsonl,
        write_walltimes,
    )

    if snapshot is None:
        print("metrics: nothing recorded", file=sys.stderr)
        return
    if metrics_out is None:
        print(prometheus_text(snapshot), end="")
        return
    mpath = write_jsonl(os.path.join(metrics_out, METRICS_FILENAME),
                        snapshot)
    tpath = write_walltimes(os.path.join(metrics_out, TIMINGS_FILENAME),
                            walltimes, extra=extra)
    print(f"metrics: {mpath}  {tpath}")


def cmd_figures(args) -> int:
    config = SwitchConfig.square(args.n, b_in=3, b_out=3, b_cross=1)
    print(render_cioq(CIOQSwitch(config),
                      title=f"Figure 1: CIOQ switch, N = {args.n}"))
    print(render_crossbar(
        CrossbarSwitch(config),
        title=f"Figure 2: buffered crossbar switch, N = {args.n}"))
    return 0


def cmd_run(args) -> int:
    config = _build_config(args)
    trace = _build_traffic(args).generate(args.slots, seed=args.seed)
    policy, _ = _make_policy(args.policy, args.model, args.beta)
    runner = run_cioq if args.model == "cioq" else run_crossbar
    result = runner(policy, config, trace, record=args.delays,
                    trace_occupancy=args.occupancy)
    print(format_table([result.summary()],
                       title=f"{policy.name} on {trace.name}"))
    if args.delays:
        stats = result.delay_stats(trace)
        print(format_table([stats], title="delivery delay (slots)"))
    if args.occupancy:
        print(occupancy_report(result))
    return 0


def cmd_ratio(args) -> int:
    config = _build_config(args)
    trace = _build_traffic(args).generate(args.slots, seed=args.seed)
    policy, bound = _make_policy(args.policy, args.model, args.beta)
    measure = (measure_cioq_ratio if args.model == "cioq"
               else measure_crossbar_ratio)
    m = measure(policy, trace, config, bound=bound,
                opt_mode=args.opt_mode, opt_window=args.opt_window)
    qualifier = ("exact OPT" if m.is_exact
                 else f"certified OPT bracket ({m.opt_mode})")
    print(format_table([m.as_row()],
                       title=f"empirical competitive ratio vs {qualifier}"))
    return 0 if m.within_bound else 1


def cmd_sweep(args) -> int:
    from functools import partial

    from .parallel import SweepExecutor, SweepPoint

    table = CIOQ_POLICIES if args.model == "cioq" else CROSSBAR_POLICIES
    names = [p.strip() for p in args.policies.split(",") if p.strip()]
    factories = {}
    for name in names:
        if name not in table:
            raise SystemExit(
                f"unknown policy {name!r} for model {args.model}; choose "
                f"from {sorted(table)}"
            )
        cls, _bound = table[name]
        if name == "pg" and args.beta:
            factories[name] = partial(cls, beta=args.beta)
        else:
            factories[name] = cls

    loads = [float(x) for x in args.loads.split(",") if x.strip()]
    seeds = list(range(args.seeds))
    config = _build_config(args)

    # One point per (load, seed, policy) — plus OPT when requested.
    # Traces are generated here with deterministic per-cell seeds, so the
    # point list (and therefore every table below) is independent of the
    # worker count.
    cells = []
    points = []
    for load in loads:
        traffic = _build_traffic(args, load=load)
        for seed in seeds:
            trace = traffic.generate(args.slots, seed=seed)
            cells.append((load, seed, len(trace)))
            for name in names:
                points.append(
                    SweepPoint(model=args.model, config=config, trace=trace,
                               policy_factory=factories[name], seed=seed)
                )
            if args.opt:
                points.append(
                    SweepPoint(model=args.model, config=config, trace=trace,
                               seed=seed)
                )

    metrics_every = _resolve_metrics_every(args)
    ex = SweepExecutor(
        workers=args.workers, cache_dir=args.cache_dir,
        backend=args.backend, metrics_every=metrics_every,
        progress=_stderr_progress if metrics_every is not None else None,
    )
    payloads = iter(ex.run(points))
    columns = names + (["OPT"] if args.opt else [])
    rows = []
    for load, seed, arrived in cells:
        row = {"load": round(load, 3), "seed": seed, "arrived": arrived}
        for name in columns:
            row[name] = round(next(payloads)["benefit"], 3)
        rows.append(row)
    print(format_table(
        rows,
        title=f"sweep: {args.model} {args.n}x{args.n}, {args.slots} slots, "
              f"{len(points)} points",
    ))

    agg_rows = []
    # Group by position, not by the (rounded) load value: each load
    # contributed exactly len(seeds) consecutive rows, and distinct
    # loads may round to the same display value.
    for k, load in enumerate(loads):
        cell_rows = rows[k * len(seeds):(k + 1) * len(seeds)]
        if not cell_rows:  # e.g. --seeds 0
            continue
        agg = {"load": round(load, 3)}
        for name in columns:
            agg[name] = round(sum(r[name] for r in cell_rows) / len(cell_rows), 3)
        agg_rows.append(agg)
    print(format_table(agg_rows, title="per-load mean benefit"))
    if ex.cache_dir:
        print(f"cache: {ex.cache_hits} hits, {ex.cache_misses} misses "
              f"({ex.cache_dir})")
    if metrics_every is not None:
        total = sum(t["elapsed"] for t in ex.timings)
        _emit_metrics(args.metrics_out, ex.merged_obs(),
                      {"point_seconds_total": total},
                      extra={"points": ex.timings,
                             "cache_hits": ex.cache_hits,
                             "cache_misses": ex.cache_misses})
    return 0


def cmd_scenarios_list(args) -> int:
    from .scenarios import all_scenarios

    rows = []
    for spec in all_scenarios():
        rows.append({
            "name": spec.name,
            "model": spec.model,
            "traffic": spec.traffic,
            "policies": ",".join(spec.policy_labels()),
            "slots": spec.slots,
            "seeds": len(spec.seeds),
            "description": spec.description,
        })
    print(format_table(rows, title=f"{len(rows)} registered scenarios "
                                   "(see docs/scenarios.md)"))
    return 0


def _load_spec(args):
    from .scenarios import ScenarioSpec, get_scenario

    if getattr(args, "file", None):
        return ScenarioSpec.from_file(args.file)
    if not args.name:
        raise SystemExit("need a scenario name (or --file)")
    try:
        return get_scenario(args.name)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None


def cmd_scenarios_show(args) -> int:
    spec = _load_spec(args)
    print(f"# {spec.name}: {spec.description}")
    if spec.expected:
        print(f"# expected: {spec.expected}")
    print()
    print(spec.to_toml(), end="")
    return 0


def _parse_confidence(value: Optional[float]) -> Optional[float]:
    """``--ci`` accepts a percentage in [1, 100) (e.g. 95) or a
    fraction in (0, 1) (e.g. 0.95)."""
    if value is None:
        return None
    conf = float(value)
    if 1.0 <= conf < 100.0:
        return conf / 100.0
    if 0.0 < conf < 1.0:
        return conf
    raise SystemExit(
        f"--ci takes a percentage in [1, 100) or a fraction in (0, 1), "
        f"got {value}"
    )


def cmd_scenarios_run(args) -> int:
    from .scenarios import run_scenario, write_artifacts

    spec = _load_spec(args)
    try:
        seeds = None
        if args.seeds is not None:
            seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
        spec = spec.with_overrides(slots=args.slots, seeds=seeds)
    except ValueError as exc:
        raise SystemExit(f"bad override: {exc}") from None

    # The CLI owns the executor so it can surface cache statistics and
    # metrics regardless of which path (plain/replicated) consumes it.
    from .parallel import SweepExecutor

    metrics_every = _resolve_metrics_every(args)
    ex = SweepExecutor(
        workers=args.workers, cache_dir=args.cache_dir,
        backend=args.backend, metrics_every=metrics_every,
        progress=_stderr_progress if metrics_every is not None else None,
    )

    # A spec with a replicates block runs replicated by default; any
    # replication flag opts an ordinary spec in (and overrides blocks).
    replicated = bool(spec.replicates) or any(
        getattr(args, name) is not None
        for name in ("replicates", "ci", "bootstrap", "target_half_width",
                     "batch")
    )
    if replicated:
        if args.seeds is not None:
            # Replicate seeds are the plan's base_seed ladder; silently
            # discarding an explicit --seeds list would misreport what
            # ran.
            raise SystemExit(
                "--seeds cannot be combined with replication; the "
                "replicate ladder is base_seed .. base_seed+n-1 "
                "(set it in the spec's [replicates] block)"
            )
        from .stats import (
            ReplicationPlan,
            replicate_scenario,
            write_replicated_artifacts,
        )

        try:
            plan = ReplicationPlan.from_spec(
                spec,
                n=args.replicates,
                confidence=_parse_confidence(args.ci),
                bootstrap=args.bootstrap,
                target_half_width=args.target_half_width,
                batch=args.batch,
            )
        except ValueError as exc:
            raise SystemExit(f"bad replication plan: {exc}") from None
        rrun = replicate_scenario(spec, plan=plan, executor=ex,
                                  opt_mode=args.opt_mode,
                                  opt_window=args.opt_window)
        print(rrun.tables())
        name = rrun.spec.name
        if not args.no_artifacts:
            paths = write_replicated_artifacts(rrun, args.out)
            print(f"artifacts: {'  '.join(paths)}")
    else:
        run = run_scenario(spec, executor=ex, opt_mode=args.opt_mode,
                           opt_window=args.opt_window)
        print(run.tables())
        name = run.spec.name
        if not args.no_artifacts:
            json_path, csv_path, toml_path = write_artifacts(run, args.out)
            print(f"artifacts: {json_path}  {csv_path}  {toml_path}")

    if ex.cache_dir:
        print(f"cache: {ex.cache_hits} hits, {ex.cache_misses} misses "
              f"({ex.cache_dir})")
    if metrics_every is not None:
        # Default the metric artifacts into the scenario's results dir
        # (next to result.json / manifest.json) unless redirected.
        metrics_out = args.metrics_out
        if metrics_out is None and not args.no_artifacts:
            metrics_out = os.path.join(args.out, name)
        total = sum(t["elapsed"] for t in ex.timings)
        _emit_metrics(metrics_out, ex.merged_obs(),
                      {"point_seconds_total": total},
                      extra={"points": ex.timings,
                             "cache_hits": ex.cache_hits,
                             "cache_misses": ex.cache_misses})
    return 0


def cmd_stats_summarize(args) -> int:
    import json as _json

    from .analysis.report import format_summary_table
    from .stats import load_artifact, summarize_artifact

    try:
        artifact = load_artifact(args.target, results_root=args.results)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc)) from None
    rows = summarize_artifact(
        artifact,
        confidence=_parse_confidence(args.ci),
        bootstrap=args.bootstrap,
        bootstrap_seed=args.bootstrap_seed,
    )
    if args.json:
        print(_json.dumps(rows, indent=2, sort_keys=True))
        return 0
    name = artifact.get("scenario", {}).get("name", args.target)
    print(format_summary_table(
        rows, title=f"summary of {name} ({len(artifact.get('rows', []))} "
                    f"seeds)"))
    return 0


def cmd_scenarios_export(args) -> int:
    spec = _load_spec(args)
    text = spec.to_json() + "\n" if args.format == "json" else spec.to_toml()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_trace_record(args) -> int:
    """Record a traffic model to a chunked stream file, O(chunk) memory."""
    import json as _json
    import os
    import tempfile

    from .traffic.trace import STREAM_FORMAT, STREAM_VERSION

    model = _build_traffic(args)
    source = model.arrival_source(seed=args.seed)
    chunk_slots = args.chunk_slots
    if chunk_slots < 1:
        raise SystemExit("--chunk-slots must be >= 1")
    n_packets = 0
    # The header carries the total packet count, which is only known
    # after the last slot; body chunks go to a sibling temp file first,
    # then header + body are concatenated — still one chunk in memory.
    out_dir = os.path.dirname(os.path.abspath(args.output)) or "."
    fd, body_path = tempfile.mkstemp(dir=out_dir, suffix=".body")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as body:
            base = 0
            rows = []
            for t in range(args.slots):
                for src, dst, value in source(t, None):
                    rows.append([n_packets, value, t, src, dst])
                    n_packets += 1
                if t + 1 - base == chunk_slots:
                    if rows:
                        body.write(_json.dumps(
                            {"base": base, "packets": rows}))
                        body.write("\n")
                    base, rows = t + 1, []
            if rows:
                body.write(_json.dumps({"base": base, "packets": rows}))
                body.write("\n")
        with open(args.output, "w", encoding="utf-8") as out:
            out.write(_json.dumps({
                "format": STREAM_FORMAT,
                "version": STREAM_VERSION,
                "name": f"{model.name}/{model.value_model.name}"
                        f"/seed{args.seed}",
                "n_in": model.n_in,
                "n_out": model.n_out,
                "n_slots": args.slots,
                "n_packets": n_packets,
                "chunk_slots": chunk_slots,
            }))
            out.write("\n")
            with open(body_path, "r", encoding="utf-8") as body:
                while True:
                    block = body.read(1 << 20)
                    if not block:
                        break
                    out.write(block)
    finally:
        if os.path.exists(body_path):
            os.unlink(body_path)
    print(f"wrote {args.output}: {n_packets} packets over {args.slots} "
          f"slots ({model.n_in}x{model.n_out})")
    return 0


def cmd_trace_info(args) -> int:
    from .traffic.trace import Trace, is_stream_file, read_stream_header

    if is_stream_file(args.path):
        header = dict(read_stream_header(args.path))
        header["format"] = f"{header.pop('format')} v{header.pop('version')}"
        rows = [{"field": k, "value": v} for k, v in header.items()]
        print(format_table(rows, title=f"stream trace {args.path}"))
        return 0
    rows = [{"field": k, "value": v}
            for k, v in Trace.load(args.path).describe().items()]
    print(format_table(rows, title=f"trace {args.path}"))
    return 0


def cmd_trace_replay(args) -> int:
    """Replay a recorded trace through the engine and emit its artifact.

    The default path streams the file through ``run_*_streaming`` at
    O(chunk) peak memory; ``--materialized`` loads the whole trace and
    runs the batch engine instead.  Both paths produce byte-identical
    artifacts (the CI memory smoke diffs them), and ``--rss-limit-mb``
    turns the memory bound into a hard failure via ``setrlimit``.
    """
    import json as _json

    from .simulation.engine import run_cioq_streaming, run_crossbar_streaming
    from .traffic.replay import TraceReplayTraffic
    from .traffic.trace import Trace, is_stream_file, read_stream_header

    if args.rss_limit_mb is not None:
        import resource

        limit = int(args.rss_limit_mb) * (1 << 20)
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))

    metrics_every = _resolve_metrics_every(args)
    rec = None
    if metrics_every is not None:
        from .obs import InMemoryRecorder

        rec = InMemoryRecorder(every_k=metrics_every, timed=True)

    policy, _ = _make_policy(args.policy, args.model, args.beta)
    if is_stream_file(args.path):
        header = read_stream_header(args.path)
        n_in, n_out = int(header["n_in"]), int(header["n_out"])
        n_slots = int(header["n_slots"])
    else:
        trace = Trace.load(args.path)
        n_in, n_out, n_slots = trace.n_in, trace.n_out, trace.n_slots
    config = SwitchConfig(n_in=n_in, n_out=n_out, speedup=args.speedup,
                          b_in=args.b_in, b_out=args.b_out,
                          b_cross=args.b_cross)

    if args.materialized:
        trace = Trace.load(args.path)
        runner = run_cioq if args.model == "cioq" else run_crossbar
        result = runner(policy, config, trace, backend="reference",
                        metrics=rec)
    else:
        replay = TraceReplayTraffic(args.path)
        runner = (run_cioq_streaming if args.model == "cioq"
                  else run_crossbar_streaming)
        result = runner(policy, config, replay.arrival_source(), n_slots,
                        metrics=rec)

    artifact = _json.dumps(result.summary(), indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(artifact)
        mode = "materialized" if args.materialized else "streaming"
        print(f"wrote {args.output} ({mode})")
    else:
        print(artifact, end="")
    if rec is not None:
        _emit_metrics(args.metrics_out, rec.snapshot(), rec.walltimes())
    if args.report_rss:
        import resource

        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        print(f"peak RSS: {peak_kb / 1024:.1f} MiB", file=sys.stderr)
    return 0


def _metrics_stream_path(target: str) -> str:
    """Resolve an ``obs`` target: a results dir (containing
    ``metrics.jsonl``) or a direct path to a JSONL stream."""
    from .obs import METRICS_FILENAME

    if os.path.isdir(target):
        return os.path.join(target, METRICS_FILENAME)
    return target


def cmd_obs_export(args) -> int:
    """Render a written metrics stream as Prometheus exposition text."""
    from .obs import iter_jsonl, prometheus_text, snapshot_from_events

    path = _metrics_stream_path(args.target)
    try:
        snap = snapshot_from_events(iter_jsonl(path))
    except FileNotFoundError:
        raise SystemExit(
            f"no metrics stream at {path} (produce one with --metrics, "
            f"e.g. `repro scenarios run <name> --metrics`)") from None
    text = prometheus_text(snap)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_obs_tail(args) -> int:
    """Print the last N events of a metrics stream (JSONL, one per
    line), optionally filtered by event type."""
    import json as _json
    from collections import deque

    path = _metrics_stream_path(args.target)
    from .obs import iter_jsonl

    try:
        events = iter_jsonl(path)
        if args.event:
            events = (e for e in events if e.get("event") == args.event)
        last = deque(events, maxlen=max(0, args.lines))
    except FileNotFoundError:
        raise SystemExit(
            f"no metrics stream at {path} (produce one with --metrics)"
        ) from None
    for ev in last:
        print(_json.dumps(ev, sort_keys=True, separators=(",", ":")))
    return 0


def cmd_submit(args) -> int:
    """Enqueue scenario jobs for a running (or future) farm server."""
    from .farm import JobQueue, build_job

    queue = JobQueue(args.queue)
    seeds = None
    if args.seeds is not None:
        seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    for name in args.scenarios:
        try:
            job = build_job(scenario=name, slots=args.slots, seeds=seeds,
                            replicates=args.replicates,
                            opt_mode=args.opt_mode,
                            opt_window=args.opt_window)
        except ValueError as exc:
            raise SystemExit(f"bad job: {exc}") from None
        job_id = queue.submit(job)
        print(f"submitted {job_id}: {name}")
    print(f"queue depth: {queue.depth()} ({args.queue})")
    return 0


def cmd_serve(args) -> int:
    """Run the experiment-farm serve loop until the queue drains."""
    from .farm import serve
    from .parallel import SweepKilled

    metrics_every = _resolve_metrics_every(args)
    recorder = None
    if metrics_every is not None:
        from .obs import InMemoryRecorder

        recorder = InMemoryRecorder(every_k=metrics_every, timed=True)

    def progress(line: str) -> None:
        print(f"# {line}", file=sys.stderr)

    try:
        summary = serve(
            args.queue,
            out_dir=args.out,
            cache_dir=args.cache_dir,
            workers=args.workers,
            backend=args.backend,
            max_jobs=args.max_jobs,
            idle_timeout=args.idle_timeout,
            metrics=recorder,
            progress=progress,
        )
    except SweepKilled as exc:
        # Fault injection: exit distinctly; the killed job stays in
        # running/ and the next server requeues it.
        print(f"killed: {exc}", file=sys.stderr)
        return 3
    print(f"served {summary['served']} job(s), "
          f"{summary['failed']} failed; store: "
          f"{summary['store_hits']} hits, "
          f"{summary['store_misses']} executed")
    if recorder is not None:
        total = sum(t["elapsed"] for t in summary["timings"])
        _emit_metrics(args.metrics_out, recorder.snapshot(),
                      recorder.walltimes(),
                      extra={"points": summary["timings"],
                             "worker_busy_seconds": total})
    return 0 if summary["failed"] == 0 else 1


def cmd_farm_status(args) -> int:
    """Print queue counts, per-job state, and store statistics."""
    from .farm import farm_status

    status = farm_status(args.queue, cache_dir=args.cache_dir)
    counts = status["counts"]
    print(format_table(
        [{"state": state, "jobs": n} for state, n in counts.items()],
        title=f"farm queue ({args.queue})",
    ))
    if status["jobs"]:
        print(format_table(status["jobs"], title="jobs"))
    store = status.get("store")
    if store is not None:
        print(format_table(
            [{"measure": k, "value": v} for k, v in store.items()],
            title=f"result store ({args.cache_dir})",
        ))
    return 0


def cmd_farm_gc(args) -> int:
    """Garbage-collect the result store (stale versions, torn files,
    dead claims)."""
    from .farm import ResultStore
    from .parallel import CACHE_VERSION

    store = ResultStore(args.cache_dir, CACHE_VERSION)
    removed = store.gc(include_legacy=args.include_legacy)
    print(format_table(
        [{"bucket": k, "files": v} for k, v in removed.items()],
        title=f"store gc ({args.cache_dir})",
    ))
    return 0


def cmd_constants(args) -> int:
    from .theory.ratios import verify_paper_constants

    report = verify_paper_constants()
    rows = [{"constant": k, "value": v} for k, v in report.items()]
    print(format_table(rows, title="paper constants (Theorems 2 and 4)"))
    ok = report["pg_consistent"] and report["cpg_consistent"]
    return 0 if ok else 1


def _add_backend(p: argparse.ArgumentParser) -> None:
    from .simulation.backends import BACKENDS, DEFAULT_BACKEND

    p.add_argument("--backend", choices=BACKENDS, default=DEFAULT_BACKEND,
                   help="slot-loop backend: reference (pure Python), "
                        "fast (vectorized numpy, bit-identical), or auto "
                        "(fast when possible; see docs/backends.md)")


def _add_metrics(p: argparse.ArgumentParser) -> None:
    p.add_argument("--metrics", action="store_true",
                   help="collect deterministic run metrics (counters; "
                        "byte-identical for any worker count)")
    p.add_argument("--metrics-every", type=int, default=None,
                   dest="metrics_every", metavar="K",
                   help="also sample the per-slot series every K slots "
                        "(implies --metrics)")
    p.add_argument("--metrics-out", default=None, dest="metrics_out",
                   metavar="DIR",
                   help="directory for metrics.jsonl + timings.json "
                        "(default: the results dir when one is written, "
                        "else Prometheus text on stdout)")


def _add_opt_mode(p: argparse.ArgumentParser) -> None:
    from .offline.opt import OPT_MODES

    p.add_argument("--opt-mode", choices=OPT_MODES, default="exact",
                   dest="opt_mode",
                   help="offline OPT solver: exact MILP, windowed "
                        "certified bracket, near-linear bounds bracket, "
                        "or auto-selection by model size "
                        "(docs/offline_opt.md)")
    p.add_argument("--opt-window", type=int, default=None, dest="opt_window",
                   help="window width in arrival slots for "
                        "--opt-mode windowed (auto picks one otherwise)")


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--model", choices=("cioq", "crossbar"), default="cioq")
    p.add_argument("--n", type=int, default=4, help="ports per side")
    p.add_argument("--speedup", type=int, default=1)
    p.add_argument("--b-in", type=int, default=4, dest="b_in")
    p.add_argument("--b-out", type=int, default=4, dest="b_out")
    p.add_argument("--b-cross", type=int, default=1, dest="b_cross")
    p.add_argument("--traffic", choices=TRAFFIC_MODELS, default="bernoulli")
    p.add_argument("--values", choices=sorted(VALUE_MODELS), default="unit")
    p.add_argument("--load", type=float, default=1.0)
    p.add_argument("--slots", type=int, default=40)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--beta", type=float, default=None,
                   help="preemption threshold (pg only)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Online packet scheduling for CIOQ and buffered "
                    "crossbar switches (SPAA 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="print Figure 1 / Figure 2")
    p_fig.add_argument("--n", type=int, default=3)
    p_fig.set_defaults(func=cmd_figures)

    p_run = sub.add_parser("run", help="simulate a policy")
    _add_common(p_run)
    p_run.add_argument("--policy", default="gm")
    p_run.add_argument("--delays", action="store_true",
                       help="report delivery-delay statistics")
    p_run.add_argument("--occupancy", action="store_true",
                       help="print an occupancy sparkline")
    p_run.set_defaults(func=cmd_run)

    p_ratio = sub.add_parser("ratio", help="measure ratio vs offline OPT")
    _add_common(p_ratio)
    p_ratio.add_argument("--policy", default="gm")
    _add_opt_mode(p_ratio)
    p_ratio.set_defaults(func=cmd_ratio)

    p_sweep = sub.add_parser(
        "sweep",
        help="grid sweep over loads and seeds (parallel with --workers)",
    )
    _add_common(p_sweep)
    p_sweep.add_argument("--policies", default="gm",
                         help="comma-separated policy names")
    p_sweep.add_argument("--loads", default="0.8,1.0,1.2",
                         help="comma-separated offered loads")
    p_sweep.add_argument("--seeds", type=int, default=3,
                         help="number of seeds (0..N-1) per cell")
    p_sweep.add_argument("--workers", type=int, default=0,
                         help="worker processes (<=1: serial)")
    p_sweep.add_argument("--cache-dir", default=None, dest="cache_dir",
                         help="on-disk result cache directory")
    p_sweep.add_argument("--opt", action="store_true",
                         help="include the exact-OPT column")
    _add_backend(p_sweep)
    _add_metrics(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_scen = sub.add_parser(
        "scenarios",
        help="declarative experiments: list|show|run|export "
             "(docs/scenarios.md)",
    )
    scen_sub = p_scen.add_subparsers(dest="scenarios_command", required=True)

    s_list = scen_sub.add_parser("list", help="list registered scenarios")
    s_list.set_defaults(func=cmd_scenarios_list)

    s_show = scen_sub.add_parser("show", help="print one scenario spec")
    s_show.add_argument("name", nargs="?", help="registered scenario name")
    s_show.add_argument("--file", default=None,
                        help="read the spec from a TOML/JSON file instead")
    s_show.set_defaults(func=cmd_scenarios_show)

    s_run = scen_sub.add_parser(
        "run", help="run a scenario and write results/<name>/ artifacts"
    )
    s_run.add_argument("name", nargs="?", help="registered scenario name")
    s_run.add_argument("--file", default=None,
                       help="run a spec from a TOML/JSON file instead")
    s_run.add_argument("--workers", type=int, default=0,
                       help="worker processes (<=1: serial; results are "
                            "bit-identical either way)")
    s_run.add_argument("--cache-dir", default=None, dest="cache_dir",
                       help="on-disk sweep-point cache directory")
    s_run.add_argument("--slots", type=int, default=None,
                       help="override the spec's arrival-slot count")
    s_run.add_argument("--seeds", default=None,
                       help="override the spec's seeds (comma-separated)")
    s_run.add_argument("--out", default=RESULTS_DIR,
                       help=f"artifact root directory (default: "
                            f"{RESULTS_DIR}/)")
    s_run.add_argument("--no-artifacts", action="store_true",
                       help="print tables only, write nothing")
    s_run.add_argument("--replicates", type=int, default=None,
                       help="run N replicate seeds and report mean/std/CI "
                            "summaries (docs/statistics.md)")
    s_run.add_argument("--ci", type=float, default=None,
                       help="confidence level for summaries, e.g. 95")
    s_run.add_argument("--bootstrap", type=int, default=None,
                       help="percentile-bootstrap resamples (0 = off)")
    s_run.add_argument("--target-half-width", type=float, default=None,
                       dest="target_half_width",
                       help="stop early once every policy's CI half-width "
                            "for the target metric is at most this")
    s_run.add_argument("--batch", type=int, default=None,
                       help="seeds per early-stopping batch")
    _add_backend(s_run)
    _add_opt_mode(s_run)
    _add_metrics(s_run)
    s_run.set_defaults(func=cmd_scenarios_run)

    s_export = scen_sub.add_parser(
        "export", help="emit a scenario spec as TOML or JSON"
    )
    s_export.add_argument("name", nargs="?", help="registered scenario name")
    s_export.add_argument("--file", default=None,
                          help="re-export a spec file (format conversion)")
    s_export.add_argument("--format", choices=("toml", "json"),
                          default="toml")
    s_export.add_argument("-o", "--output", default=None,
                          help="write to a file instead of stdout")
    s_export.set_defaults(func=cmd_scenarios_export)

    p_stats = sub.add_parser(
        "stats",
        help="statistics over result artifacts (docs/statistics.md)",
    )
    stats_sub = p_stats.add_subparsers(dest="stats_command", required=True)
    st_sum = stats_sub.add_parser(
        "summarize",
        help="mean/std/CI summary of a written results/<name>/ artifact",
    )
    st_sum.add_argument("target",
                        help="scenario name under --results, a results "
                             "directory, or a result.json path")
    st_sum.add_argument("--results", default=RESULTS_DIR,
                        help=f"artifact root (default: {RESULTS_DIR}/)")
    st_sum.add_argument("--ci", type=float, default=None,
                        help="confidence level, e.g. 95 (default: the "
                             "artifact's replicates block, else 95)")
    st_sum.add_argument("--bootstrap", type=int, default=None,
                        help="percentile-bootstrap resamples")
    st_sum.add_argument("--bootstrap-seed", type=int, default=None,
                        dest="bootstrap_seed",
                        help="bootstrap RNG seed (default: artifact block)")
    st_sum.add_argument("--json", action="store_true",
                        help="emit summary rows as JSON instead of a table")
    st_sum.set_defaults(func=cmd_stats_summarize)

    p_trace = sub.add_parser(
        "trace",
        help="recorded traces: record|info|replay (streaming, O(chunk) "
             "memory; docs/traffic_models.md)",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    t_rec = trace_sub.add_parser(
        "record",
        help="record a traffic model to a chunked stream file",
    )
    _add_common(t_rec)
    t_rec.add_argument("output", help="stream file to write (JSONL)")
    t_rec.add_argument("--chunk-slots", type=int, default=4096,
                       dest="chunk_slots",
                       help="arrival slots per stream chunk line")
    t_rec.set_defaults(func=cmd_trace_record)

    t_info = trace_sub.add_parser(
        "info", help="print a recorded trace's header/summary"
    )
    t_info.add_argument("path", help="trace file (stream or legacy JSON)")
    t_info.set_defaults(func=cmd_trace_info)

    t_rep = trace_sub.add_parser(
        "replay",
        help="replay a recorded trace through the engine "
             "(streaming by default)",
    )
    t_rep.add_argument("path", help="trace file (stream or legacy JSON)")
    t_rep.add_argument("--model", choices=("cioq", "crossbar"),
                       default="cioq")
    t_rep.add_argument("--policy", default="gm")
    t_rep.add_argument("--beta", type=float, default=None,
                       help="preemption threshold (pg only)")
    t_rep.add_argument("--speedup", type=int, default=1)
    t_rep.add_argument("--b-in", type=int, default=4, dest="b_in")
    t_rep.add_argument("--b-out", type=int, default=4, dest="b_out")
    t_rep.add_argument("--b-cross", type=int, default=1, dest="b_cross")
    t_rep.add_argument("--materialized", action="store_true",
                       help="load the full trace and run the batch "
                            "engine (the control path)")
    t_rep.add_argument("--rss-limit-mb", type=int, default=None,
                       dest="rss_limit_mb",
                       help="hard address-space ceiling in MiB "
                            "(setrlimit; exceeding it kills the run)")
    t_rep.add_argument("--report-rss", action="store_true",
                       dest="report_rss",
                       help="print peak RSS to stderr after the run")
    t_rep.add_argument("-o", "--output", default=None,
                       help="write the result artifact to a file")
    _add_metrics(t_rep)
    t_rep.set_defaults(func=cmd_trace_replay)

    p_obs = sub.add_parser(
        "obs",
        help="observability: export|tail a written metrics stream "
             "(docs/observability.md)",
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    o_exp = obs_sub.add_parser(
        "export",
        help="render a metrics.jsonl stream as Prometheus text",
    )
    o_exp.add_argument("target",
                       help="results/<name>/ directory or a metrics.jsonl "
                            "path")
    o_exp.add_argument("-o", "--output", default=None,
                       help="write to a file instead of stdout")
    o_exp.set_defaults(func=cmd_obs_export)

    o_tail = obs_sub.add_parser(
        "tail", help="print the last events of a metrics stream"
    )
    o_tail.add_argument("target",
                        help="results/<name>/ directory or a metrics.jsonl "
                             "path")
    o_tail.add_argument("-n", "--lines", type=int, default=10,
                        help="number of trailing events to print")
    o_tail.add_argument("--event", default=None,
                        choices=("meta", "counter", "gauge", "histogram",
                                 "sample"),
                        help="only events of this type")
    o_tail.set_defaults(func=cmd_obs_tail)

    p_submit = sub.add_parser(
        "submit",
        help="enqueue scenario jobs for the experiment farm",
        description="Enqueue one job per named scenario on a farm job "
                    "queue (see docs/parallel.md); a repro serve loop "
                    "pointed at the same --queue executes them.",
    )
    p_submit.add_argument("scenarios", nargs="+",
                          help="registered scenario name(s)")
    p_submit.add_argument("--queue", default="farm",
                          help="job-queue root directory (default: farm)")
    p_submit.add_argument("--slots", type=int, default=None,
                          help="override the spec's horizon")
    p_submit.add_argument("--seeds", default=None,
                          help="comma-separated seed list override")
    p_submit.add_argument("--replicates", type=int, default=None,
                          metavar="N", help="replicate across N seeds")
    _add_opt_mode(p_submit)
    p_submit.set_defaults(func=cmd_submit)

    p_serve = sub.add_parser(
        "serve",
        help="run the experiment-farm serve loop",
        description="Drain a farm job queue through one persistent "
                    "worker pool and shared result store; killed "
                    "servers resume incrementally (docs/parallel.md).",
    )
    p_serve.add_argument("--queue", default="farm",
                         help="job-queue root directory (default: farm)")
    p_serve.add_argument("--out", default="results",
                         help="artifact directory (default: results)")
    p_serve.add_argument("--cache-dir", default=None, dest="cache_dir",
                         help="result-store root shared across jobs "
                              "(enables incremental resume)")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="worker processes (persistent pool; "
                              "<=1 runs in-process)")
    p_serve.add_argument("--max-jobs", type=int, default=None,
                         dest="max_jobs",
                         help="stop after this many jobs (default: "
                              "serve until idle/forever)")
    p_serve.add_argument("--idle-timeout", type=float, default=None,
                         dest="idle_timeout", metavar="SECONDS",
                         help="exit after the queue stays empty this "
                              "long (default: wait forever)")
    _add_backend(p_serve)
    _add_metrics(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_farm = sub.add_parser(
        "farm",
        help="experiment-farm introspection and maintenance",
    )
    farm_sub = p_farm.add_subparsers(dest="farm_cmd", required=True)
    f_status = farm_sub.add_parser(
        "status", help="queue counts, job states, store statistics")
    f_status.add_argument("--queue", default="farm",
                          help="job-queue root directory (default: farm)")
    f_status.add_argument("--cache-dir", default=None, dest="cache_dir",
                          help="also report result-store statistics")
    f_status.set_defaults(func=cmd_farm_status)
    f_gc = farm_sub.add_parser(
        "gc", help="reclaim stale/torn store files and dead claims")
    f_gc.add_argument("--cache-dir", required=True, dest="cache_dir",
                      help="result-store root to collect")
    f_gc.add_argument("--include-legacy", action="store_true",
                      dest="include_legacy",
                      help="also remove pre-farm flat cache entries")
    f_gc.set_defaults(func=cmd_farm_gc)

    p_const = sub.add_parser("constants", help="verify paper constants")
    p_const.set_defaults(func=cmd_constants)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
