"""Version information for the :mod:`repro` package."""

__version__ = "1.0.0"

#: SPAA 2016 / Algorithmica 2018 paper this package reproduces.
PAPER = (
    "Kamal Al-Bawani, Matthias Englert, Matthias Westermann: "
    "Online Packet Scheduling for CIOQ and Buffered Crossbar Switches. "
    "SPAA 2016; Algorithmica (2018), doi:10.1007/s00453-018-0421-x"
)
