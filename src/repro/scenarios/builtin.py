"""The built-in scenario catalog.

Each scenario below is documented in ``docs/scenarios.md`` (one section
per name; enforced by the docs-consistency tests) and runnable via
``repro scenarios run <name>``.  The catalog spans the traffic regimes
the paper's evaluation cares about — admissible and overloaded i.i.d.
traffic, bursty/correlated arrivals, skewed destination patterns,
heavy-tailed storms, QoS value mixes, and deterministic adversarial
gadgets — across both switch models.

Scenarios double as the single source of experiment parameters for the
benchmark drivers (``bench_t6``, ``bench_t10``) and the example
scripts, so a parameter change happens in exactly one place.
"""

from __future__ import annotations

from ..core.params import pg_optimal_beta
from .registry import register_scenario
from .spec import ScenarioSpec

_BETA_STAR = pg_optimal_beta()


@register_scenario
def smoke_bernoulli() -> ScenarioSpec:
    return ScenarioSpec(
        name="smoke-bernoulli",
        description="Tiny CI smoke: GM vs OPT on admissible Bernoulli "
                    "traffic (seconds to run).",
        model="cioq",
        switch={"n_in": 3, "n_out": 3, "b_in": 2, "b_out": 2},
        traffic="bernoulli",
        traffic_params={"load": 1.0},
        policies=({"name": "gm"},),
        slots=10,
        seeds=(0, 1),
        expected="Ratios stay far below the Theorem 1 bound of 3; "
                 "serial and parallel runs emit identical artifacts.",
    )


@register_scenario
def bernoulli_light() -> ScenarioSpec:
    return ScenarioSpec(
        name="bernoulli-light",
        description="Underloaded uniform Bernoulli traffic: every "
                    "reasonable scheduler delivers nearly everything.",
        model="cioq",
        switch={"n_in": 4, "n_out": 4, "b_in": 4, "b_out": 4},
        traffic="bernoulli",
        traffic_params={"load": 0.7},
        policies=({"name": "gm"}, {"name": "maxmatch"}),
        slots=40,
        seeds=(0, 1, 2),
        expected="GM matches the maximum-matching baseline; both are "
                 "within a few percent of OPT.",
    )


@register_scenario
def bernoulli_overload() -> ScenarioSpec:
    return ScenarioSpec(
        name="bernoulli-overload",
        description="Sustained 1.4x overload on uniform destinations: "
                    "admission control starts to matter.",
        model="cioq",
        switch={"n_in": 4, "n_out": 4, "b_in": 2, "b_out": 2},
        traffic="bernoulli",
        traffic_params={"load": 1.4},
        policies=({"name": "gm"}, {"name": "maxmatch"},
                  {"name": "roundrobin"}),
        slots=40,
        seeds=(0, 1, 2),
        expected="GM stays within ~20% of OPT; round-robin trails "
                 "because it wastes cycles on empty VOQs.",
    )


@register_scenario
def hotspot_incast() -> ScenarioSpec:
    return ScenarioSpec(
        name="hotspot-incast",
        description="60% of an overload aimed at one output port: "
                    "sustained output contention.",
        model="cioq",
        switch={"n_in": 4, "n_out": 4, "b_in": 4, "b_out": 4},
        traffic="hotspot",
        traffic_params={"load": 1.3, "hot_fraction": 0.6},
        policies=({"name": "gm"}, {"name": "maxmatch"},
                  {"name": "roundrobin"}),
        slots=40,
        seeds=(0, 1, 2),
        expected="The hot output queue saturates; benefit is bounded by "
                 "its line rate and GM tracks OPT closely.",
    )


@register_scenario
def diagonal_degenerate() -> ScenarioSpec:
    return ScenarioSpec(
        name="diagonal-degenerate",
        description="Diagonal loading (i -> i, spill to i+1): the "
                    "near-degenerate matching instance.",
        model="cioq",
        switch={"n_in": 4, "n_out": 4, "b_in": 2, "b_out": 2},
        traffic="diagonal",
        traffic_params={"load": 1.2},
        policies=({"name": "gm"}, {"name": "maxmatch"}),
        slots=40,
        seeds=(0, 1, 2),
        expected="Greedy maximal matching loses almost nothing to the "
                 "maximum matching despite the degenerate graph.",
    )


@register_scenario
def bursty_incast() -> ScenarioSpec:
    return ScenarioSpec(
        name="bursty-incast",
        description="Datacenter incast: ON/OFF senders bursting ~2 "
                    "pkts/slot, 60% toward one top-of-rack port.",
        model="cioq",
        switch={"n_in": 4, "n_out": 4, "speedup": 2, "b_in": 4, "b_out": 4},
        traffic="bursty",
        traffic_params={
            "p_on": 0.3,
            "p_off": 0.25,
            "burst_load": 2.0,
            "dst_weights": [0.6, 0.4 / 3, 0.4 / 3, 0.4 / 3],
        },
        policies=({"name": "gm"}, {"name": "maxmatch"},
                  {"name": "roundrobin"}, {"name": "random"}),
        slots=50,
        seeds=(1, 2, 3),
        expected="GM matches MaxMatch's throughput with a single greedy "
                 "pass per cycle (the paper's efficiency argument).",
    )


@register_scenario
def markov_phases() -> ScenarioSpec:
    return ScenarioSpec(
        name="markov-phases",
        description="Three-phase Markov-modulated load (quiet / steady "
                    "/ storm): multi-timescale rate variation.",
        model="cioq",
        switch={"n_in": 4, "n_out": 4, "b_in": 3, "b_out": 3},
        traffic="markov",
        traffic_params={"loads": [0.1, 0.6, 2.0]},
        policies=({"name": "gm"}, {"name": "maxmatch"},
                  {"name": "roundrobin"}),
        slots=60,
        seeds=(0, 1, 2),
        expected="The stationary mean load is admissible (0.9), but "
                 "storm phases overload 2x transiently; losses "
                 "concentrate there.",
    )


@register_scenario
def pareto_storm() -> ScenarioSpec:
    return ScenarioSpec(
        name="pareto-storm",
        description="Heavy-tailed Pareto bursts with Pareto packet "
                    "values: rare giant flows dominate the trace.",
        model="cioq",
        switch={"n_in": 4, "n_out": 4, "b_in": 3, "b_out": 3},
        traffic="pareto-burst",
        traffic_params={"shape": 1.5, "p_start": 0.15, "burst_load": 2.0},
        values="pareto",
        value_params={"shape": 1.5},
        policies=({"name": "pg"}, {"name": "gm"}, {"name": "fifo"}),
        slots=60,
        seeds=(0, 1, 2),
        expected="PG's preemption pays off against FIFO when a "
                 "high-value burst lands on full queues.",
    )


@register_scenario
def qos_two_class() -> ScenarioSpec:
    return ScenarioSpec(
        name="qos-two-class",
        description="Two service classes (values {1, 20}) under 1.4x "
                    "overload: PG's preemption threshold at work.",
        model="cioq",
        switch={"n_in": 3, "n_out": 3, "b_in": 2, "b_out": 2},
        traffic="bernoulli",
        traffic_params={"load": 1.4},
        values="two-value",
        value_params={"alpha": 20.0, "p_high": 0.3},
        policies=(
            {"name": "pg", "beta": 1.5, "label": "pg(beta=1.5)"},
            {"name": "pg", "beta": _BETA_STAR, "label": "pg(beta*)"},
            {"name": "pg", "beta": 5.0, "label": "pg(beta=5)"},
            {"name": "fifo"},
        ),
        slots=40,
        seeds=(0, 1, 2),
        expected="The analysis optimum beta* = 1 + sqrt(2) is near the "
                 "empirical best; FIFO pays for never preempting.",
    )


@register_scenario
def adversarial_overload() -> ScenarioSpec:
    return ScenarioSpec(
        name="adversarial-overload",
        description="Adaptive single-output-overload attack generated "
                    "against GM, replayed as a fixed instance.",
        model="cioq",
        switch={"n_in": 6, "n_out": 6, "b_in": 3, "b_out": 3},
        traffic="adversarial",
        traffic_params={"adversary": "single-output-overload",
                        "policy": "gm"},
        policies=({"name": "gm"}, {"name": "random"}),
        slots=18,
        seeds=(0,),
        expected="GM's measured ratio climbs well above the stochastic "
                 "regime (toward ~1.5-2) while staying under 3; "
                 "randomizing the matching deflates the attack.",
    )


@register_scenario
def adversarial_beta_admission() -> ScenarioSpec:
    return ScenarioSpec(
        name="adversarial-beta-admission",
        description="The Section 4 'first term' gadget: cheap packets "
                    "block almost-beta-times-more-valuable streams.",
        model="cioq",
        switch={"n_in": 2, "n_out": 2, "speedup": 2, "b_in": 6, "b_out": 6},
        traffic="adversarial",
        traffic_params={"gadget": "beta-admission", "beta": _BETA_STAR,
                        "b_out": 6, "rate": 4, "n_rounds": 3},
        policies=({"name": "pg", "beta": _BETA_STAR}, {"name": "fifo"}),
        slots=110,
        seeds=(0,),
        expected="PG's ratio rises toward the beta-admission term of "
                 "its bound; FIFO fares worse still.",
    )


@register_scenario
def crossbar_unit_burst() -> ScenarioSpec:
    return ScenarioSpec(
        name="crossbar-unit-burst",
        description="Buffered crossbar under bursty unit-value "
                    "overload: CGU vs FIFO at B(C)=1.",
        model="crossbar",
        switch={"n_in": 3, "n_out": 3, "b_in": 2, "b_out": 2, "b_cross": 1},
        traffic="bursty",
        traffic_params={"burst_load": 2.5},
        policies=({"name": "cgu"}, {"name": "fifo"}),
        slots=16,
        seeds=(0, 1),
        expected="CGU stays within its factor-3 guarantee with a single "
                 "crosspoint buffer (bench_t10's headline).",
    )


@register_scenario
def crossbar_weighted_pareto() -> ScenarioSpec:
    return ScenarioSpec(
        name="crossbar-weighted-pareto",
        description="Buffered crossbar with heavy-tailed packet values: "
                    "CPG's two thresholds vs value-blind CGU.",
        model="crossbar",
        switch={"n_in": 3, "n_out": 3, "b_in": 2, "b_out": 2, "b_cross": 1},
        traffic="bursty",
        traffic_params={"burst_load": 2.5},
        values="pareto",
        value_params={"shape": 1.4},
        policies=({"name": "cpg"}, {"name": "cgu"}),
        slots=16,
        seeds=(0, 1),
        expected="CPG captures the high-value tail CGU forfeits; both "
                 "stay within their bounds.",
    )


@register_scenario
def speedup_grid() -> ScenarioSpec:
    return ScenarioSpec(
        name="speedup-grid",
        description="Hotspot overload at fabric speedup 1 (bench_t6 "
                    "sweeps this scenario's config over speedup 1-4).",
        model="cioq",
        switch={"n_in": 4, "n_out": 4, "b_in": 2, "b_out": 2},
        traffic="hotspot",
        traffic_params={"load": 1.3, "hot_fraction": 0.5},
        policies=({"name": "gm"}, {"name": "maxmatch"},
                  {"name": "roundrobin"}, {"name": "random"}),
        slots=20,
        seeds=(0, 1),
        expected="Every policy's benefit grows with speedup; OPT is "
                 "monotone and GM keeps its factor-3 guarantee.",
    )


@register_scenario
def appmix_qos() -> ScenarioSpec:
    return ScenarioSpec(
        name="appmix-qos",
        description="Web/video/VoIP session mix with two service "
                    "classes: admission control on empirically shaped "
                    "load.",
        model="cioq",
        switch={"n_in": 4, "n_out": 4, "b_in": 4, "b_out": 4},
        traffic="appmix",
        traffic_params={"load_scale": 0.8},
        values="two-value",
        value_params={"alpha": 10.0, "p_high": 0.25},
        policies=({"name": "pg", "beta": _BETA_STAR, "label": "pg(beta*)"},
                  {"name": "gm"}, {"name": "fifo"}),
        slots=80,
        seeds=(0,),  # replicate seeds come from the block below
        replicates={"n": 12, "confidence": 0.95, "bootstrap": 200},
        expected="Heavy-tailed web bursts drive transient overload on "
                 "top of steady video/VoIP; PG's preemption beats FIFO "
                 "on the high-value class, with mean +- CI reported "
                 "per policy (bench_t14).",
    )


@register_scenario
def appmix_crossbar() -> ScenarioSpec:
    return ScenarioSpec(
        name="appmix-crossbar",
        description="The application mix on a buffered crossbar, web "
                    "bursts retuned hotter: CGU vs FIFO under session "
                    "traffic.",
        model="crossbar",
        switch={"n_in": 4, "n_out": 4, "b_in": 2, "b_out": 2, "b_cross": 1},
        traffic="appmix",
        traffic_params={"web": {"rate": 2.5, "shape": 1.1},
                        "load_scale": 0.7},
        policies=({"name": "cgu"}, {"name": "fifo"}),
        slots=60,
        seeds=(0,),  # replicate seeds come from the block below
        replicates={"n": 12, "confidence": 0.95, "bootstrap": 200},
        expected="The heavier web tail concentrates incast on single "
                 "outputs; CGU's greedy unit-value rule holds its "
                 "factor-3 guarantee with mean +- CI per policy "
                 "(bench_t14).",
    )


@register_scenario
def replicated_smoke() -> ScenarioSpec:
    return ScenarioSpec(
        name="replicated-smoke",
        description="Replication demo: GM vs OPT on admissible Bernoulli "
                    "traffic across a 12-seed ladder with 95% CIs.",
        model="cioq",
        switch={"n_in": 3, "n_out": 3, "b_in": 2, "b_out": 2},
        traffic="bernoulli",
        traffic_params={"load": 1.1},
        policies=({"name": "gm"},),
        slots=12,
        seeds=(0,),  # replicate seeds come from the block below
        replicates={"n": 12, "confidence": 0.95, "bootstrap": 200},
        expected="The benefit CI half-width shrinks ~1/sqrt(n); serial "
                 "and parallel replicated runs emit identical summary "
                 "artifacts (CI diffs them).",
    )
