"""Scenario registry and declarative experiment subsystem.

Experiments are described by :class:`ScenarioSpec` — a serializable
record of switch, traffic, values, policies, slots, seeds and metrics —
registered under a name (:func:`register_scenario`), executed through
the parallel sweep substrate (:func:`run_scenario`), and persisted as
versioned JSON/CSV artifacts under ``results/``
(:func:`write_artifacts`).  The built-in catalog in
:mod:`repro.scenarios.builtin` is documented scenario-by-scenario in
``docs/scenarios.md`` and drives the ``repro scenarios`` CLI verbs.
"""

from .spec import (
    ADAPTIVE_ADVERSARIES,
    ADVERSARIAL_GADGETS,
    KNOWN_METRICS,
    POLICY_CLASSES,
    TRAFFIC_KINDS,
    VALUE_KINDS,
    ScenarioSpec,
    dumps_toml,
    policy_label,
)
from .registry import (
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from .runner import (
    ARTIFACT_VERSION,
    RESULTS_DIR,
    ScenarioRun,
    run_scenario,
    write_artifacts,
)
from . import builtin  # noqa: F401  (populates the registry on import)

__all__ = [
    "ScenarioSpec",
    "ScenarioRun",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "run_scenario",
    "write_artifacts",
    "policy_label",
    "dumps_toml",
    "ARTIFACT_VERSION",
    "RESULTS_DIR",
    "TRAFFIC_KINDS",
    "VALUE_KINDS",
    "POLICY_CLASSES",
    "ADVERSARIAL_GADGETS",
    "ADAPTIVE_ADVERSARIES",
    "KNOWN_METRICS",
]
