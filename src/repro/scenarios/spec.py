"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a complete, serializable description of one
experiment: which switch, which traffic model with which parameters,
which packet-value distribution, which policies, how many slots and
seeds, and which result metrics to export.  Specs are plain data — they
round-trip through TOML and JSON losslessly — so every experiment in
the repository can be named, versioned, diffed and re-run without
touching code.

The module also owns the *kind registries* that make specs declarative:

* :data:`TRAFFIC_KINDS` — traffic-model constructors by kind name
  (``bernoulli``, ``bursty``, ``hotspot``, ``diagonal``, ``markov``,
  ``pareto-burst``, ``appmix``, ``replay``, ``adversarial``);
* :data:`VALUE_KINDS` — value-model factories by kind name;
* :data:`POLICY_CLASSES` — policy classes by (switch model, name),
  shared with the CLI's policy tables.
"""

from __future__ import annotations

import dataclasses
import json
import re
import tomllib
from dataclasses import dataclass, field
from functools import partial
from types import MappingProxyType
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core import CGUPolicy, CPGPolicy, GMPolicy, PGPolicy
from ..scheduling.baselines import (
    MaxMatchPolicy,
    MaxWeightMatchPolicy,
    RandomMatchPolicy,
    RoundRobinPolicy,
)
from ..scheduling.fifo import FifoCIOQPolicy, FifoCrossbarPolicy
from ..switch.config import SwitchConfig
from ..traffic import (
    ApplicationMixTraffic,
    BernoulliTraffic,
    BurstyTraffic,
    DiagonalTraffic,
    HotspotTraffic,
    MarkovModulatedTraffic,
    ParetoBurstTraffic,
    TraceReplayTraffic,
    TrafficModel,
    ValueModel,
)
from ..traffic.adversarial import (
    FullQueuePressureAdversary,
    PreemptionBaitAdversary,
    RotatingBurstAdversary,
    SingleOutputOverloadAdversary,
    beta_admission_gadget,
    burst_reject_gadget,
    escalating_values_gadget,
    generate_adaptive_trace,
    two_value_contention_gadget,
)
from ..traffic.values import (
    exponential_values,
    geometric_class_values,
    pareto_values,
    two_value,
    uniform_values,
    unit_values,
)

# --------------------------------------------------------------------------
# Kind registries
# --------------------------------------------------------------------------

#: Policy classes by switch model and scenario/CLI name.
POLICY_CLASSES: Dict[str, Dict[str, Callable[..., object]]] = {
    "cioq": {
        "gm": GMPolicy,
        "pg": PGPolicy,
        "maxmatch": MaxMatchPolicy,
        "maxweight": MaxWeightMatchPolicy,
        "roundrobin": RoundRobinPolicy,
        "random": RandomMatchPolicy,
        "fifo": FifoCIOQPolicy,
    },
    "crossbar": {
        "cgu": CGUPolicy,
        "cpg": CPGPolicy,
        "fifo": FifoCrossbarPolicy,
    },
}

#: Value-model factories by kind name; each accepts the spec's
#: ``value_params`` as keyword arguments.
VALUE_KINDS: Dict[str, Callable[..., ValueModel]] = {
    "unit": unit_values,
    "uniform": uniform_values,
    "two-value": two_value,
    "exponential": exponential_values,
    "pareto": pareto_values,
    "classes": geometric_class_values,
}

#: Deterministic adversarial gadgets usable via the ``adversarial``
#: traffic kind (``traffic_params["gadget"]`` selects one; remaining
#: params go to the gadget function).
ADVERSARIAL_GADGETS: Dict[str, Callable[..., object]] = {
    "burst-reject": burst_reject_gadget,
    "escalating-values": escalating_values_gadget,
    "beta-admission": beta_admission_gadget,
    "two-value-contention": two_value_contention_gadget,
}

#: Adaptive adversaries usable via ``traffic_params["adversary"]``; the
#: attack is generated against the CIOQ policy named by
#: ``traffic_params["policy"]`` (default ``"gm"``) on the scenario's
#: switch config, then replayed as a fixed trace — equivalent in power
#: to the oblivious adversary for deterministic algorithms.
ADAPTIVE_ADVERSARIES: Dict[str, Callable[..., object]] = {
    "single-output-overload": SingleOutputOverloadAdversary,
    "rotating-burst": RotatingBurstAdversary,
    "full-queue-pressure": FullQueuePressureAdversary,
    "preemption-bait": PreemptionBaitAdversary,
}


def _require_unit_values(kind: str, value_model: ValueModel) -> None:
    """Recorded/gadget traces carry their own packet values; a spec
    that also names a value distribution would misdescribe the data in
    its artifacts, so reject the combination."""
    if value_model.name != "unit":
        raise ValueError(
            f"{kind} traffic carries its own packet values; leave the "
            f"scenario's 'values' at its default ('unit'), got "
            f"{value_model.name!r}"
        )


def _build_adversarial(
    config: SwitchConfig, slots: int, value_model: ValueModel, params: Mapping
) -> TrafficModel:
    _require_unit_values("adversarial", value_model)
    params = dict(params)
    gadget_name = params.pop("gadget", None)
    adversary_name = params.pop("adversary", None)
    if (gadget_name is None) == (adversary_name is None):
        raise ValueError(
            "adversarial traffic needs exactly one of 'gadget' "
            f"({sorted(ADVERSARIAL_GADGETS)}) or 'adversary' "
            f"({sorted(ADAPTIVE_ADVERSARIES)})"
        )
    if adversary_name is not None:
        if adversary_name not in ADAPTIVE_ADVERSARIES:
            raise ValueError(
                f"unknown adaptive adversary {adversary_name!r}; choose "
                f"from {sorted(ADAPTIVE_ADVERSARIES)}"
            )
        victim = params.pop("policy", "gm")
        if victim not in POLICY_CLASSES["cioq"]:
            raise ValueError(
                f"adaptive adversaries attack CIOQ policies; unknown "
                f"policy {victim!r}"
            )
        victim_params = dict(params.pop("policy_params", {}))
        cls = POLICY_CLASSES["cioq"][victim]
        factory = partial(cls, **victim_params) if victim_params else cls
        adversary = ADAPTIVE_ADVERSARIES[adversary_name](**params)
        trace = generate_adaptive_trace(factory, config, adversary,
                                        n_slots=slots)
        return TraceReplayTraffic(trace)
    if gadget_name not in ADVERSARIAL_GADGETS:
        raise ValueError(
            f"unknown adversarial gadget {gadget_name!r}; choose from "
            f"{sorted(ADVERSARIAL_GADGETS)}"
        )
    if config.n_in != config.n_out:
        raise ValueError("adversarial gadgets need a square switch")
    repeat = bool(params.pop("repeat", False))
    trace = ADVERSARIAL_GADGETS[gadget_name](n=config.n_in, **params)
    return TraceReplayTraffic(trace, repeat=repeat)


def _build_replay(
    config: SwitchConfig, slots: int, value_model: ValueModel, params: Mapping
) -> TrafficModel:
    _require_unit_values("replay", value_model)
    params = dict(params)
    path = params.pop("path", None)
    if not path:
        raise ValueError("replay traffic needs a 'path' param")
    model = TraceReplayTraffic(str(path), repeat=bool(params.pop("repeat", False)))
    if params:
        raise ValueError(f"unknown replay params: {sorted(params)}")
    if (model.n_in, model.n_out) != (config.n_in, config.n_out):
        raise ValueError(
            f"recorded trace is {model.n_in}x{model.n_out} but the scenario "
            f"switch is {config.n_in}x{config.n_out}"
        )
    return model


def _stochastic(cls) -> Callable[..., TrafficModel]:
    def build(config: SwitchConfig, slots: int, value_model: ValueModel,
              params: Mapping):
        return cls(config.n_in, config.n_out, value_model=value_model,
                   **params)

    return build


#: Traffic-model builders by kind name.  Each takes
#: ``(config, slots, value_model, params)`` and returns a TrafficModel
#: (``slots`` matters only to the adaptive-adversary kind, which
#: generates its attack up front).
TRAFFIC_KINDS: Dict[str, Callable[..., TrafficModel]] = {
    "bernoulli": _stochastic(BernoulliTraffic),
    "bursty": _stochastic(BurstyTraffic),
    "hotspot": _stochastic(HotspotTraffic),
    "diagonal": _stochastic(DiagonalTraffic),
    "markov": _stochastic(MarkovModulatedTraffic),
    "pareto-burst": _stochastic(ParetoBurstTraffic),
    "appmix": _stochastic(ApplicationMixTraffic),
    "replay": _build_replay,
    "adversarial": _build_adversarial,
}

#: Payload fields a spec may select as export metrics (OPT rows only
#: carry ``benefit``).
KNOWN_METRICS = (
    "benefit",
    "n_sent",
    "n_arrived",
    "n_accepted",
    "n_rejected",
    "n_preempted",
    "n_residual",
    "value_arrived",
)

_SWITCH_DEFAULTS = {
    "n_in": 4,
    "n_out": 4,
    "speedup": 1,
    "b_in": 4,
    "b_out": 4,
    "b_cross": 1,
}

#: Keys a spec's ``replicates`` block may carry, with their defaults
#: (documented key-by-key in ``docs/statistics.md``; consumed by
#: :class:`repro.stats.ReplicationPlan`).  ``target_half_width`` has no
#: default — when present it enables sequential early stopping.
REPLICATES_DEFAULTS = {
    "n": 8,
    "base_seed": 0,
    "confidence": 0.95,
    "bootstrap": 0,
    "bootstrap_seed": 0,
    "target_metric": "benefit",
    "batch": 8,
}


def _validate_replicates(block: Mapping, include_opt: bool,
                         metrics: Tuple[str, ...]) -> None:
    """Validate a spec's ``replicates`` block (empty means disabled)."""
    known = set(REPLICATES_DEFAULTS) | {"target_half_width"}
    unknown = set(block) - known
    if unknown:
        raise ValueError(
            f"unknown replicates keys: {sorted(unknown)}; choose from "
            f"{sorted(known)}"
        )
    merged = {**REPLICATES_DEFAULTS, **block}
    if not isinstance(merged["n"], int) or merged["n"] < 2:
        raise ValueError(
            f"replicates.n must be an int >= 2 (one seed has no "
            f"variance), got {merged['n']!r}"
        )
    for key in ("base_seed", "bootstrap", "bootstrap_seed", "batch"):
        if not isinstance(merged[key], int):
            raise ValueError(f"replicates.{key} must be an int, "
                             f"got {merged[key]!r}")
    if merged["bootstrap"] < 0:
        raise ValueError("replicates.bootstrap must be >= 0")
    if merged["batch"] < 1:
        raise ValueError("replicates.batch must be >= 1")
    conf = merged["confidence"]
    if not isinstance(conf, (int, float)) or not 0.0 < conf < 1.0:
        raise ValueError(
            f"replicates.confidence must be a fraction in (0, 1), "
            f"got {conf!r}"
        )
    if "target_half_width" in block:
        thw = block["target_half_width"]
        if not isinstance(thw, (int, float)) or thw <= 0:
            raise ValueError(
                f"replicates.target_half_width must be > 0 (omit the "
                f"key to disable early stopping), got {thw!r}"
            )
    metric = merged["target_metric"]
    if metric == "ratio":
        if not include_opt:
            raise ValueError(
                "replicates.target_metric 'ratio' needs include_opt"
            )
    elif metric != "benefit" and metric not in metrics:
        # Early stopping watches per-seed values; a metric the scenario
        # does not export would leave the stopping rule starved forever
        # (all seeds always run) — reject it up front.
        raise ValueError(
            f"replicates.target_metric {metric!r} is not exported by "
            f"this scenario; choose from "
            f"{('benefit', 'ratio') + tuple(metrics)}"
        )


def _freeze(value):
    """Recursively wrap mappings in read-only views (and sequences in
    tuples) so registered specs really are immutable."""
    if isinstance(value, Mapping):
        return MappingProxyType({k: _freeze(v) for k, v in value.items()})
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value):
    """Inverse of :func:`_freeze`: plain dicts/lists for serialization."""
    if isinstance(value, Mapping):
        return {k: _thaw(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_thaw(v) for v in value]
    return value


def policy_label(entry: Mapping) -> str:
    """Display/column label of one policy entry: ``pg(beta=1.5)``."""
    params = {k: v for k, v in entry.items() if k not in ("name", "label")}
    if "label" in entry:
        return str(entry["label"])
    if not params:
        return str(entry["name"])
    # repr keeps full float precision so closely spaced parametrizations
    # (e.g. a fine beta sweep) never collide into one label.
    inner = ",".join(f"{k}={params[k]!r}" if isinstance(params[k], float)
                     else f"{k}={params[k]}" for k in sorted(params))
    return f"{entry['name']}({inner})"


# --------------------------------------------------------------------------
# The spec
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, serializable experiment description.

    Parameters
    ----------
    name:
        Registry key and artifact directory name (kebab-case).
    description:
        One-line intent, shown by ``repro scenarios list``.
    model:
        Switch model: ``"cioq"`` or ``"crossbar"``.
    switch:
        :class:`SwitchConfig` fields (``n_in``, ``n_out``, ``speedup``,
        ``b_in``, ``b_out``, ``b_cross``); missing fields take the
        defaults in :data:`_SWITCH_DEFAULTS`.
    traffic, traffic_params:
        Traffic kind (a :data:`TRAFFIC_KINDS` key) and its parameters.
    values, value_params:
        Value-model kind (a :data:`VALUE_KINDS` key) and parameters.
    policies:
        Policy entries: mappings with a ``name`` key (a
        :data:`POLICY_CLASSES` key for the model), optional ``label``,
        and any further keys passed to the policy constructor —
        ``{"name": "pg", "beta": 1.5}``.
    slots:
        Arrival slots per run.
    seeds:
        Seeds, one independent trace per seed.
    include_opt:
        Also solve the exact offline optimum per seed (adds the OPT
        column and per-policy ratio aggregates).
    metrics:
        Payload fields exported to the per-(seed, policy) metrics table
        (subset of :data:`KNOWN_METRICS`).
    replicates:
        Optional replication block (empty mapping = disabled).  Keys
        (see :data:`REPLICATES_DEFAULTS` and ``docs/statistics.md``):
        ``n`` replicate seeds starting at ``base_seed``, aggregated with
        mean/stddev and ``confidence``-level normal CIs, optionally
        ``bootstrap`` percentile-bootstrap resamples
        (``bootstrap_seed``), and sequential early stopping in batches
        of ``batch`` seeds once ``target_metric``'s CI half-width drops
        to ``target_half_width``.  A spec with a non-empty block runs
        replicated by default under ``repro scenarios run``.
    expected:
        One-line qualitative expectation, shown in the catalog docs and
        ``repro scenarios show``.
    """

    name: str
    description: str = ""
    model: str = "cioq"
    switch: Mapping[str, int] = field(default_factory=dict)
    traffic: str = "bernoulli"
    traffic_params: Mapping[str, object] = field(default_factory=dict)
    values: str = "unit"
    value_params: Mapping[str, object] = field(default_factory=dict)
    policies: Tuple[Mapping[str, object], ...] = ({"name": "gm"},)
    slots: int = 40
    seeds: Tuple[int, ...] = (0, 1, 2)
    include_opt: bool = True
    metrics: Tuple[str, ...] = ("benefit", "n_sent", "n_rejected",
                               "n_preempted", "n_residual")
    replicates: Mapping[str, object] = field(default_factory=dict)
    expected: str = ""

    def __post_init__(self) -> None:
        # Freeze the mapping/sequence fields: specs are shared through
        # the registry, and a caller mutating e.g.
        # ``spec.policies[0]["beta"]`` in place would silently corrupt
        # every later run while artifacts keep the stale label.
        for name in ("switch", "traffic_params", "value_params",
                     "policies", "replicates"):
            object.__setattr__(self, name, _freeze(getattr(self, name)))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        object.__setattr__(self, "metrics", tuple(self.metrics))
        # Kebab-case names only: the name doubles as the artifact
        # directory under results/, so path-like names (separators,
        # dots) must never reach os.path.join.
        if not re.fullmatch(r"[a-z0-9][a-z0-9-]*", self.name or ""):
            raise ValueError(
                f"scenario name must be kebab-case ([a-z0-9-], starting "
                f"alphanumeric), got {self.name!r}"
            )
        if self.model not in POLICY_CLASSES:
            raise ValueError(f"unknown switch model {self.model!r}")
        if self.traffic not in TRAFFIC_KINDS:
            raise ValueError(
                f"unknown traffic kind {self.traffic!r}; choose from "
                f"{sorted(TRAFFIC_KINDS)}"
            )
        if self.values not in VALUE_KINDS:
            raise ValueError(
                f"unknown value kind {self.values!r}; choose from "
                f"{sorted(VALUE_KINDS)}"
            )
        unknown = set(self.switch) - set(_SWITCH_DEFAULTS)
        if unknown:
            raise ValueError(f"unknown switch fields: {sorted(unknown)}")
        if not self.policies:
            raise ValueError("scenario needs at least one policy")
        table = POLICY_CLASSES[self.model]
        for entry in self.policies:
            if "name" not in entry:
                raise ValueError(f"policy entry without a name: {entry!r}")
            if entry["name"] not in table:
                raise ValueError(
                    f"unknown policy {entry['name']!r} for model "
                    f"{self.model}; choose from {sorted(table)}"
                )
        labels = [policy_label(e) for e in self.policies]
        if len(set(labels)) != len(labels):
            raise ValueError(
                f"duplicate policy labels: {labels} (give entries an "
                f"explicit distinct 'label')"
            )
        # Labels become result-row columns; reserved column names would
        # silently overwrite the seed/arrived/OPT data.
        reserved = {"seed", "arrived", "OPT"} & set(labels)
        if reserved:
            raise ValueError(
                f"policy labels collide with reserved result columns: "
                f"{sorted(reserved)}"
            )
        if self.slots < 1:
            raise ValueError("slots must be >= 1")
        if not self.seeds:
            raise ValueError("scenario needs at least one seed")
        for m in self.metrics:
            if m not in KNOWN_METRICS:
                raise ValueError(
                    f"unknown metric {m!r}; choose from {KNOWN_METRICS}"
                )
        if self.replicates:
            _validate_replicates(self.replicates, self.include_opt,
                                 self.metrics)

    # -- construction helpers ----------------------------------------------

    def build_config(self) -> SwitchConfig:
        fields = dict(_SWITCH_DEFAULTS)
        fields.update(self.switch)
        return SwitchConfig(**fields)

    def build_value_model(self) -> ValueModel:
        return VALUE_KINDS[self.values](**dict(self.value_params))

    def build_traffic(self) -> TrafficModel:
        return TRAFFIC_KINDS[self.traffic](
            self.build_config(), self.slots, self.build_value_model(),
            dict(self.traffic_params),
        )

    def policy_factories(self) -> List[Tuple[str, Callable[[], object]]]:
        """(label, picklable zero-arg factory) per policy entry."""
        table = POLICY_CLASSES[self.model]
        out: List[Tuple[str, Callable[[], object]]] = []
        for entry in self.policies:
            params = {k: v for k, v in entry.items()
                      if k not in ("name", "label")}
            cls = table[entry["name"]]
            factory = partial(cls, **params) if params else cls
            out.append((policy_label(entry), factory))
        return out

    def policy_labels(self) -> List[str]:
        return [policy_label(e) for e in self.policies]

    def with_overrides(
        self,
        slots: Optional[int] = None,
        seeds: Optional[Sequence[int]] = None,
        **kwargs,
    ) -> "ScenarioSpec":
        """A copy with the given fields replaced (`--slots/--seed` hook)."""
        if slots is not None:
            kwargs["slots"] = int(slots)
        if seeds is not None:
            kwargs["seeds"] = tuple(int(s) for s in seeds)
        return dataclasses.replace(self, **kwargs) if kwargs else self

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "model": self.model,
            "switch": _thaw(self.switch),
            "traffic": self.traffic,
            "traffic_params": _thaw(self.traffic_params),
            "values": self.values,
            "value_params": _thaw(self.value_params),
            "policies": [_thaw(e) for e in self.policies],
            "slots": self.slots,
            "seeds": list(self.seeds),
            "include_opt": self.include_opt,
            "metrics": list(self.metrics),
            "replicates": _thaw(self.replicates),
            "expected": self.expected,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioSpec":
        data = dict(data)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        if "policies" in data:
            data["policies"] = tuple(dict(e) for e in data["policies"])
        if "seeds" in data:
            data["seeds"] = tuple(int(s) for s in data["seeds"])
        if "metrics" in data:
            data["metrics"] = tuple(str(m) for m in data["metrics"])
        return cls(**data)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def to_toml(self) -> str:
        return dumps_toml(self.to_dict())

    @classmethod
    def from_toml(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(tomllib.loads(text))

    @classmethod
    def from_file(cls, path: str) -> "ScenarioSpec":
        """Load a spec from a ``.toml`` or ``.json`` file."""
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        if str(path).endswith(".json"):
            return cls.from_json(text)
        return cls.from_toml(text)


# --------------------------------------------------------------------------
# Minimal TOML emitter (stdlib tomllib only parses)
# --------------------------------------------------------------------------

_TOML_STR_ESCAPES = {"\\": "\\\\", '"': '\\"', "\b": "\\b", "\t": "\\t",
                     "\n": "\\n", "\f": "\\f", "\r": "\\r"}

_BARE_KEY = re.compile(r"[A-Za-z0-9_-]+")


def _toml_key(key: str) -> str:
    """A key, quoted unless it is TOML bare-key safe — so exports of
    specs with unusual param names still parse back."""
    if _BARE_KEY.fullmatch(key):
        return key
    return _toml_scalar(key)


def _toml_scalar(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        escaped = "".join(
            _TOML_STR_ESCAPES.get(ch)
            or (f"\\u{ord(ch):04X}" if ord(ch) < 0x20 or ch == "\x7f" else ch)
            for ch in value
        )
        return f'"{escaped}"'
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_scalar(v) for v in value) + "]"
    if isinstance(value, Mapping):
        # Inline table — used for dicts nested below the top level
        # (e.g. an adaptive adversary's policy_params).
        inner = ", ".join(f"{_toml_key(k)} = {_toml_scalar(v)}"
                          for k, v in value.items())
        return "{" + (f" {inner} " if inner else "") + "}"
    raise TypeError(f"cannot emit {type(value).__name__} as TOML")


def dumps_toml(data: Mapping[str, object]) -> str:
    """Emit a two-level mapping (scalars, arrays, dict sections, and
    lists of dicts as arrays-of-tables) as TOML.

    Exactly the shapes :meth:`ScenarioSpec.to_dict` produces; the output
    parses back with :mod:`tomllib` to an equal structure.
    """
    lines: List[str] = []
    sections: List[Tuple[str, Mapping]] = []
    table_arrays: List[Tuple[str, Sequence[Mapping]]] = []
    for key, value in data.items():
        if isinstance(value, Mapping):
            sections.append((key, value))
        elif (isinstance(value, (list, tuple)) and value
              and all(isinstance(v, Mapping) for v in value)):
            table_arrays.append((key, value))
        else:
            lines.append(f"{_toml_key(key)} = {_toml_scalar(value)}")
    for key, mapping in sections:
        lines.append("")
        lines.append(f"[{_toml_key(key)}]")
        for k, v in mapping.items():
            lines.append(f"{_toml_key(k)} = {_toml_scalar(v)}")
    for key, entries in table_arrays:
        for entry in entries:
            lines.append("")
            lines.append(f"[[{_toml_key(key)}]]")
            for k, v in entry.items():
                lines.append(f"{_toml_key(k)} = {_toml_scalar(v)}")
    return "\n".join(lines) + "\n"
