"""The scenario registry.

Named :class:`~repro.scenarios.spec.ScenarioSpec` instances live in a
process-global registry, populated at import time by
:mod:`repro.scenarios.builtin` and extensible by users — decorate a
zero-argument builder function (or pass a spec directly)::

    @register_scenario
    def my_scenario() -> ScenarioSpec:
        return ScenarioSpec(name="my-scenario", ...)

Every registered name is discoverable via ``repro scenarios list`` and
must have a matching section in ``docs/scenarios.md`` (enforced by the
docs-consistency tests).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

from .spec import ScenarioSpec

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(
    target: Union[ScenarioSpec, Callable[[], ScenarioSpec]],
):
    """Register a scenario; usable as a decorator or a direct call.

    Accepts either a :class:`ScenarioSpec` or a zero-argument builder
    returning one (the decorator form).  Registering a name twice is an
    error — scenarios are immutable, versioned experiment definitions.
    """
    spec = target() if callable(target) else target
    if not isinstance(spec, ScenarioSpec):
        raise TypeError(
            f"register_scenario needs a ScenarioSpec (or a builder "
            f"returning one), got {type(spec).__name__}"
        )
    if spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return target


def unregister_scenario(name: str) -> None:
    """Remove a scenario (test/tooling hook; builtin names reload on
    next interpreter start)."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        ) from None


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)


def all_scenarios() -> List[ScenarioSpec]:
    return [_REGISTRY[name] for name in scenario_names()]
