"""Scenario execution and result artifacts.

:func:`run_scenario` turns a :class:`~repro.scenarios.spec.ScenarioSpec`
into :class:`~repro.parallel.SweepPoint` units — one per (seed, policy)
plus an exact-OPT point per seed when requested — and executes them
through a :class:`~repro.parallel.SweepExecutor`, so every scenario
parallelizes over ``--workers`` processes and caches on disk exactly
like the sweeps, with bit-identical results for any worker count.

:func:`write_artifacts` persists a run under ``results/<name>/`` as

* ``result.json`` — the versioned artifact: spec, per-seed benefit
  rows, per-policy aggregates and the per-(seed, policy) metrics table
  (schema version :data:`ARTIFACT_VERSION`);
* ``result.csv`` — the metrics table as CSV for spreadsheet/pandas use;
* ``scenario.toml`` — the spec that produced the result, re-runnable
  via ``repro scenarios run --file``.

Artifacts contain no timestamps or environment data, so re-running a
scenario (serially or in parallel) reproduces the files byte for byte —
the property CI diffs.

Replicated runs (:func:`repro.stats.replicate_scenario`) reuse this
runner per seed batch and :func:`write_artifacts` for the per-seed
record, then add ``summary.json`` / ``summary.csv`` with
mean/stddev/CI rows per (policy, metric) — see ``docs/statistics.md``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .._version import __version__
from ..analysis.ratio import per_seed_ratios
from ..analysis.report import csv_table, format_table
from ..obs import build_manifest, write_manifest
from ..parallel import SweepExecutor, SweepPoint
from ..simulation.backends import DEFAULT_BACKEND
from .spec import ScenarioSpec

#: Bump when the artifact schema changes (consumers check this).
#: v2: the embedded scenario dict gained a ``replicates`` block.
#: v3: an ``opt`` block records the OPT solver mode and window; rows
#: carry ``OPT_lo``/``OPT_hi`` and aggregates carry ratio brackets when
#: the solver mode is inexact.
ARTIFACT_VERSION = 3

#: Default artifact root, relative to the working directory.
RESULTS_DIR = "results"


@dataclass
class ScenarioRun:
    """Outcome of one scenario execution."""

    spec: ScenarioSpec
    #: One row per seed: seed, arrived, then one benefit column per
    #: policy label (plus OPT — and OPT_lo/OPT_hi when the OPT solver
    #: mode is inexact — when the spec asks for it).
    rows: List[Dict[str, object]]
    #: One row per policy label: mean/min/max benefit over seeds, plus
    #: mean_ratio (OPT / policy, averaged over seeds) when available.
    aggregates: List[Dict[str, object]]
    #: One row per (seed, policy): the spec's selected metrics.
    metrics: List[Dict[str, object]]
    #: OPT solver selection the run was executed with (recorded in the
    #: artifact so exact and bracketed denominators are never conflated).
    opt_mode: str = "exact"
    opt_window: Optional[int] = None
    #: Slot-loop backend the run executed with.  Recorded in the
    #: provenance manifest only — never in ``result.json``, whose bytes
    #: must stay backend-independent by the bit-identity contract.
    backend: str = DEFAULT_BACKEND

    def artifact(self) -> Dict[str, object]:
        """The versioned, JSON-serializable result record."""
        return {
            "artifact_version": ARTIFACT_VERSION,
            "repro_version": __version__,
            "scenario": self.spec.to_dict(),
            "opt": {"mode": self.opt_mode, "window": self.opt_window},
            "rows": self.rows,
            "aggregates": self.aggregates,
            "metrics": self.metrics,
        }

    def tables(self) -> str:
        """Human-readable report (what ``repro scenarios run`` prints)."""
        spec = self.spec
        out = [
            format_table(
                self.rows,
                title=f"scenario {spec.name}: {spec.model} "
                      f"{spec.build_config().n_in}x"
                      f"{spec.build_config().n_out}, {spec.slots} slots, "
                      f"{len(spec.seeds)} seeds",
            ),
            format_table(self.aggregates, title="per-policy aggregates"),
        ]
        return "\n".join(out)


def run_scenario(
    spec: ScenarioSpec,
    workers: int = 0,
    cache_dir: Optional[str] = None,
    executor: Optional[SweepExecutor] = None,
    backend: str = DEFAULT_BACKEND,
    opt_mode: str = "exact",
    opt_window: Optional[int] = None,
) -> ScenarioRun:
    """Execute a scenario; pure function of the spec.

    ``workers``/``cache_dir``/``backend`` build a fresh executor unless
    one is passed explicitly (then the executor's own backend applies).
    Results are bit-identical for any worker count and — by the backend
    contract (see :mod:`repro.simulation.backends`) — for any backend.

    ``opt_mode``/``opt_window`` select the offline-optimum solver for
    the per-seed OPT points (see :mod:`repro.offline.opt` and
    ``docs/offline_opt.md``); with an inexact mode the rows carry
    certified ``OPT_lo``/``OPT_hi`` brackets next to the conservative
    ``OPT`` column, and the aggregates report ratio brackets instead of
    an exact-looking mean ratio.
    """
    ex = executor if executor is not None else SweepExecutor(
        workers=workers, cache_dir=cache_dir, backend=backend
    )
    config = spec.build_config()
    traffic = spec.build_traffic()
    factories = spec.policy_factories()
    labels = [label for label, _ in factories]

    traces = {seed: traffic.generate(spec.slots, seed=seed)
              for seed in spec.seeds}
    points: List[SweepPoint] = []
    for seed in spec.seeds:
        trace = traces[seed]
        for label, factory in factories:
            points.append(
                SweepPoint(model=spec.model, config=config, trace=trace,
                           policy_factory=factory, seed=seed,
                           tag={"policy": label, "seed": seed})
            )
        if spec.include_opt:
            points.append(
                SweepPoint(model=spec.model, config=config, trace=trace,
                           seed=seed, tag={"policy": "OPT", "seed": seed},
                           opt_mode=opt_mode, opt_window=opt_window)
            )

    payloads = iter(ex.run(points))
    rows: List[Dict[str, object]] = []
    metrics: List[Dict[str, object]] = []
    benefits: Dict[str, List[float]] = {label: [] for label in labels}
    opt_benefits: List[float] = []
    opt_bounds: List[Tuple[float, float]] = []
    for seed in spec.seeds:
        row: Dict[str, object] = {"seed": seed, "arrived": len(traces[seed])}
        for label in labels:
            payload = next(payloads)
            benefit = float(payload["benefit"])
            benefits[label].append(benefit)
            row[label] = round(benefit, 6)
            metric_row: Dict[str, object] = {"seed": seed, "policy": label}
            for m in spec.metrics:
                metric_row[m] = payload.get(m)
            metrics.append(metric_row)
        if spec.include_opt:
            payload = next(payloads)
            benefit = float(payload["benefit"])
            opt_benefits.append(benefit)
            row["OPT"] = round(benefit, 6)
            lo = float(payload.get("opt_lower", benefit))
            hi = float(payload.get("opt_upper", benefit))
            opt_bounds.append((lo, hi))
            if opt_mode != "exact":
                row["OPT_lo"] = round(lo, 6)
                row["OPT_hi"] = round(hi, 6)
            metric_row = {"seed": seed, "policy": "OPT"}
            for m in spec.metrics:
                metric_row[m] = payload.get(m)
            metrics.append(metric_row)
        rows.append(row)

    aggregates = compute_aggregates(
        labels, benefits, opt_benefits if spec.include_opt else None,
        opt_bounds if spec.include_opt else None,
    )

    return ScenarioRun(spec=spec, rows=rows, aggregates=aggregates,
                       metrics=metrics, opt_mode=opt_mode,
                       opt_window=opt_window, backend=ex.backend)


def compute_aggregates(
    labels: List[str],
    benefits: Dict[str, List[float]],
    opt_benefits: Optional[List[float]],
    opt_bounds: Optional[List[Tuple[float, float]]] = None,
) -> List[Dict[str, object]]:
    """Per-policy aggregate rows over per-seed benefit lists.

    The mean ratio averages *per-seed* ratios (OPT / policy, seed by
    seed) rather than dividing summed benefits — the two differ whenever
    seeds have different magnitudes, and the per-seed mean is the
    estimator the paper's per-instance ratio tables use (see
    ``docs/statistics.md``).  Shared by :func:`run_scenario` and the
    replicated runs in :mod:`repro.stats.replication`, so single-pass
    and replicated artifacts agree on aggregate semantics.

    ``opt_bounds`` carries the per-seed certified ``(lower, upper)`` OPT
    brackets.  When any seed's bracket is non-degenerate (inexact OPT
    solver), ``mean_ratio`` is reported as ``None`` and the certified
    bracket ``[mean_ratio_lo, mean_ratio_hi]`` on the true mean ratio is
    emitted instead — an inexact denominator never masquerades as an
    exact one.
    """

    def _mean_ratio(opts: List[float], vals: List[float]):
        # Per-seed ratios (both-zero seeds are perfect, 1.0); seeds
        # whose ratio is unbounded (ONL = 0 < OPT) are excluded
        # from the mean — matching the summary rows of
        # repro.stats — and the mean is None (RFC-8259-valid
        # JSON, no Infinity) only when no finite ratio exists.
        ratios = [r for r in per_seed_ratios(opts, vals) if r is not None]
        return round(sum(ratios) / len(ratios), 6) if ratios else None

    bracketed = opt_bounds is not None and any(
        lo != hi for lo, hi in opt_bounds
    )
    aggregates: List[Dict[str, object]] = []
    for label in labels:
        vals = benefits[label]
        agg: Dict[str, object] = {
            "policy": label,
            "mean_benefit": round(sum(vals) / len(vals), 6),
            "min_benefit": round(min(vals), 6),
            "max_benefit": round(max(vals), 6),
        }
        if opt_benefits is not None:
            if bracketed:
                agg["mean_ratio"] = None
                agg["mean_ratio_lo"] = _mean_ratio(
                    [lo for lo, _ in opt_bounds], vals
                )
                agg["mean_ratio_hi"] = _mean_ratio(
                    [hi for _, hi in opt_bounds], vals
                )
            else:
                agg["mean_ratio"] = _mean_ratio(opt_benefits, vals)
        aggregates.append(agg)
    if opt_benefits is not None:
        agg = {
            "policy": "OPT",
            "mean_benefit": round(sum(opt_benefits) / len(opt_benefits), 6),
            "min_benefit": round(min(opt_benefits), 6),
            "max_benefit": round(max(opt_benefits), 6),
            "mean_ratio": None if bracketed else 1.0,
        }
        if bracketed:
            agg["mean_ratio_lo"] = None
            agg["mean_ratio_hi"] = None
        aggregates.append(agg)
    return aggregates


def build_run_manifest(run: ScenarioRun, kind: str = "scenario",
                       extra: Optional[Dict[str, object]] = None
                       ) -> Dict[str, object]:
    """Provenance manifest for a scenario run (see
    :mod:`repro.obs.manifest`): code version, spec hash, seeds, backend
    and OPT mode — deterministic per machine, no timestamps or worker
    counts."""
    return build_manifest(
        kind=kind,
        name=run.spec.name,
        spec=run.spec.to_dict(),
        seeds=run.spec.seeds,
        backend=run.backend,
        opt_mode=run.opt_mode,
        opt_window=run.opt_window,
        extra=extra,
    )


def write_artifacts(
    run: ScenarioRun, out_dir: str = RESULTS_DIR
) -> Tuple[str, str, str]:
    """Write ``result.json``, ``result.csv`` and ``scenario.toml`` under
    ``out_dir/<scenario name>/``; returns the three paths.

    Also drops a ``manifest.json`` provenance record into the directory
    (a side effect, not one of the returned paths — the result-artifact
    schema and this function's signature are unchanged)."""
    target = os.path.join(out_dir, run.spec.name)
    os.makedirs(target, exist_ok=True)
    json_path = os.path.join(target, "result.json")
    csv_path = os.path.join(target, "result.csv")
    toml_path = os.path.join(target, "scenario.toml")
    with open(json_path, "w", encoding="utf-8") as fh:
        # allow_nan=False guarantees the artifact stays strict JSON.
        json.dump(run.artifact(), fh, indent=2, sort_keys=True,
                  allow_nan=False)
        fh.write("\n")
    columns = ["seed", "policy", *run.spec.metrics]
    with open(csv_path, "w", encoding="utf-8", newline="") as fh:
        fh.write(csv_table(run.metrics, columns=columns))
    with open(toml_path, "w", encoding="utf-8") as fh:
        fh.write(run.spec.to_toml())
    write_manifest(target, build_run_manifest(run))
    return json_path, csv_path, toml_path
